// Client: the blocking library side of the stems wire protocol
// (server/wire.h), used by the stems_cli example, bench_server and the
// server test suite.
//
//   Client client;
//   STEMS_RETURN_NOT_OK(client.Connect("127.0.0.1", port, "tenant_a", ""));
//   auto prepared = client.Prepare(
//       "SELECT u.id FROM users u WHERE u.age >= $min");
//   auto portal = client.Bind(prepared.Value().stmt_id,
//                             sql::SqlParams().Set("min", Value::Int64(30)));
//   auto submit = client.Submit(portal.Value());
//   while (true) {
//     auto fetch = client.Fetch(submit.Value().query_id);
//     for (auto& row : fetch.Value().rows) Use(row);
//     if (fetch.Value().done) break;
//   }
//
// One outstanding request at a time (strict request/response); not
// thread-safe — one Client per thread. Every server-reported failure is
// returned as its wire Status and kept in last_error() with the
// structured extras (retry-after hint, SQL position).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "server/wire.h"
#include "sql/params.h"
#include "types/value.h"

namespace stems::server {

/// The most recent Error frame, with its structured fields.
struct ClientError {
  StatusCode code = StatusCode::kOk;
  std::string message;
  uint32_t sql_line = 0;
  uint32_t sql_column = 0;
  uint32_t retry_after_ms = 0;
};

struct PrepareResult {
  uint32_t stmt_id = 0;
  size_t num_params = 0;
  std::vector<std::pair<std::string, ValueType>> columns;
};

struct SubmitResult {
  uint64_t query_id = 0;
  bool admitted = true;
  uint32_t queue_position = 0;
};

struct FetchResult {
  std::vector<std::vector<Value>> rows;
  bool done = false;
};

class Client {
 public:
  Client() = default;
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Opens the TCP connection and authenticates as `tenant`.
  Status Connect(const std::string& host, uint16_t port,
                 const std::string& tenant, const std::string& token = "");
  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }

  /// Compiles `sql` server-side; statement ids are allocated by the
  /// client.
  Result<PrepareResult> Prepare(const std::string& sql);

  /// Binds parameters into a fresh portal of the prepared statement.
  Result<uint32_t> Bind(uint32_t stmt_id, const sql::SqlParams& params = {});

  /// Starts the portal's query. An over-quota submit is *queued*
  /// (admitted=false, Fetch returns rows once capacity frees); a
  /// hard-over-quota submit fails with kResourceExhausted and a
  /// retry-after hint in last_error().
  Result<SubmitResult> Submit(uint32_t portal_id,
                              const std::string& preset = "");

  /// Up to max_rows results. done=true ends the stream; a query that
  /// failed server-side ends with its typed Status instead.
  Result<FetchResult> Fetch(uint64_t query_id, uint32_t max_rows = 1024);

  Status Cancel(uint64_t query_id);

  /// This tenant's rolled-up QueryStats counters.
  Result<std::vector<std::pair<std::string, uint64_t>>> TenantStats();

  /// Engine-wide metrics, Prometheus plaintext (Server::MetricsText()).
  Result<std::string> Metrics();

  /// Orderly session end (Close/CloseOk), then disconnects.
  Status Close();

  /// Hard disconnect without a Close frame — the misbehaving-client shape
  /// the server's mid-query cleanup tests exercise.
  void Abort();

  /// Convenience: Prepare + Bind + Submit + Fetch-to-end. Spins through
  /// queued admission (brief sleeps between empty fetches).
  Result<std::vector<std::vector<Value>>> RunQuery(
      const std::string& sql, const sql::SqlParams& params = {},
      const std::string& preset = "");

  const ClientError& last_error() const { return last_error_; }

  /// Testing escape hatch: opens the TCP connection without sending a
  /// Hello frame (protocol-violation tests drive the raw socket).
  Status ConnectRawForTest(const std::string& host, uint16_t port);
  /// Testing escape hatch: raw bytes onto the socket (malformed-frame
  /// robustness tests).
  Status SendRaw(const void* data, size_t size);
  /// Testing escape hatch: half-closes the write side (shutdown(SHUT_WR)),
  /// signalling EOF to the server while responses stay readable.
  void ShutdownWriteForTest();
  /// Testing escape hatch: blocking read of the next whole frame.
  Status ReadFrameRaw(wire::FrameType* type, std::string* payload);

 private:
  /// Sends one frame and reads the response, which must be `expected` or
  /// an Error frame (returned as its Status).
  Status RoundTrip(const std::string& frame, wire::FrameType expected,
                   std::string* response_payload);
  Status WriteAll(const void* data, size_t size);
  Status ReadExactly(void* data, size_t size);

  int fd_ = -1;
  uint64_t session_id_ = 0;
  uint32_t next_stmt_id_ = 1;
  uint32_t next_portal_id_ = 1;
  ClientError last_error_;
};

}  // namespace stems::server
