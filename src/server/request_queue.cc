#include "server/request_queue.h"

#include <algorithm>

namespace stems::server {

void RequestQueue::PushLocked(Request&& request) {
  lanes_[request.lane].push_back(std::move(request));
  ++lane_total_;
  high_water_ = std::max(high_water_, lane_total_);
}

bool RequestQueue::TryPush(Request&& request) {
  {
    MutexLock lock(&mu_);
    auto it = lanes_.find(request.lane);
    // Full lane: return before touching `request`, so the caller still
    // holds the intact frame and can retry it later. Other lanes keep
    // their own budget (fairness: see header).
    if (it != lanes_.end() && it->second.size() >= per_lane_capacity_) {
      return false;
    }
    PushLocked(std::move(request));
  }
  cv_.NotifyOne();
  return true;
}

void RequestQueue::PushControl(Request request) {
  {
    MutexLock lock(&mu_);
    PushLocked(std::move(request));
  }
  cv_.NotifyOne();
}

Request RequestQueue::PopLocked() {
  // Lane 0 (pre-auth) drains first — required for per-session FIFO across
  // the Hello-time lane switch (see header). It is the smallest key.
  auto it = lanes_.begin();
  if (it->first != 0) {
    // Round-robin: the first lane strictly after the cursor, wrapping to
    // the lowest lane id. Empty deques are erased on pop, so every map
    // entry is a candidate.
    it = lanes_.upper_bound(rr_cursor_);
    if (it == lanes_.end()) it = lanes_.begin();
    rr_cursor_ = it->first;
  }
  Request out = std::move(it->second.front());
  it->second.pop_front();
  --lane_total_;
  if (it->second.empty()) lanes_.erase(it);
  return out;
}

bool RequestQueue::PopWithTimeout(Request* request,
                                  std::chrono::milliseconds timeout) {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(&mu_);
  // Explicit predicate loop (not a wait lambda): the guarded reads stay in
  // this function, where the analysis sees the lock held.
  while (!HasWorkLocked()) {
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout &&
        !HasWorkLocked()) {
      return false;
    }
  }
  *request = PopLocked();
  return true;
}

size_t RequestQueue::size() const {
  MutexLock lock(&mu_);
  return lane_total_;
}

size_t RequestQueue::high_water() const {
  MutexLock lock(&mu_);
  return high_water_;
}

void RequestQueue::WakeAll() { cv_.NotifyAll(); }

}  // namespace stems::server
