#include "server/tenant_governor.h"

#include <algorithm>

namespace stems::server {

std::vector<std::pair<std::string, uint64_t>> TenantRollup::Counters() const {
  return {
      {"queries_submitted", queries_submitted},
      {"queries_admitted", queries_admitted},
      {"queries_queued", queries_queued},
      {"queries_rejected", queries_rejected},
      {"queries_completed", queries_completed},
      {"queries_cancelled", queries_cancelled},
      {"queries_failed", queries_failed},
      {"num_results", num_results},
      {"tuples_routed", tuples_routed},
      {"tuples_retired", tuples_retired},
      {"spill_ios", spill_ios},
      {"bytes_spilled", bytes_spilled},
      {"builds_avoided", builds_avoided},
      {"running_queries", running_queries},
      {"queued_queries", queued_queries},
      {"memory_entries_in_use", memory_entries_in_use},
      {"queue_high_water", queue_high_water},
      {"queued_time_ms", queued_time_ms},
  };
}

Status TenantGovernor::RegisterTenant(const std::string& name,
                                      TenantQuota quota) {
  if (name.empty()) {
    return Status::InvalidArgument("tenant name must be nonempty");
  }
  if (quota.max_concurrent_queries == 0) {
    return Status::InvalidArgument("tenant '" + name +
                                   "': max_concurrent_queries must be >= 1");
  }
  MutexLock lock(&mu_);
  if (tenants_.count(name) != 0) {
    return Status::AlreadyExists("tenant '" + name + "' already registered");
  }
  tenants_[name].quota = quota;
  tenant_order_.push_back(name);
  return Status::OK();
}

bool TenantGovernor::HasTenant(const std::string& name) const {
  MutexLock lock(&mu_);
  return tenants_.count(name) != 0;
}

std::vector<std::string> TenantGovernor::TenantNames() const {
  MutexLock lock(&mu_);
  return tenant_order_;
}

uint64_t TenantGovernor::WindowSpillIos(TenantState* state,
                                        Clock::time_point now) const {
  if (!state->window_open ||
      now - state->window_start >=
          std::chrono::milliseconds(state->quota.spill_window_ms)) {
    state->window_open = true;
    state->window_start = now;
    state->window_spill_ios = 0;
  }
  return state->window_spill_ios;
}

AdmissionOutcome TenantGovernor::CheckCapacity(TenantState* state,
                                               size_t memory_entries,
                                               uint32_t* retry_after_ms) {
  const TenantQuota& quota = state->quota;
  TenantRollup& rollup = state->rollup;
  *retry_after_ms = 0;
  if (rollup.running_queries >= quota.max_concurrent_queries) {
    *retry_after_ms = quota.reject_retry_after_ms;
    return AdmissionOutcome::kQueue;
  }
  if (quota.max_memory_entries > 0 &&
      rollup.memory_entries_in_use + memory_entries >
          quota.max_memory_entries) {
    *retry_after_ms = quota.reject_retry_after_ms;
    return AdmissionOutcome::kQueue;
  }
  if (quota.spill_io_window_budget > 0) {
    const auto now = Clock::now();
    if (WindowSpillIos(state, now) >= quota.spill_io_window_budget) {
      // Capacity frees when the window rolls over.
      const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
          now - state->window_start);
      const int64_t remaining =
          static_cast<int64_t>(quota.spill_window_ms) - elapsed.count();
      *retry_after_ms =
          static_cast<uint32_t>(std::max<int64_t>(remaining, 1));
      return AdmissionOutcome::kQueue;
    }
  }
  return AdmissionOutcome::kAdmit;
}

AdmissionDecision TenantGovernor::OnSubmit(const std::string& tenant,
                                           size_t memory_entries) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  AdmissionDecision decision;
  if (it == tenants_.end()) {
    decision.outcome = AdmissionOutcome::kReject;
    decision.status = Status::NotFound("unknown tenant '" + tenant + "'");
    return decision;
  }
  TenantState& state = it->second;
  TenantRollup& rollup = state.rollup;
  ++rollup.queries_submitted;
  const size_t charge = memory_entries > 0
                            ? memory_entries
                            : state.quota.default_query_memory_entries;
  // A query that can never fit must not sit in the queue forever.
  if (state.quota.max_memory_entries > 0 &&
      charge > state.quota.max_memory_entries) {
    ++rollup.queries_rejected;
    decision.outcome = AdmissionOutcome::kReject;
    decision.status = Status::ResourceExhausted(
        "query memory charge of " + std::to_string(charge) +
        " entries exceeds tenant '" + tenant + "' memory quota of " +
        std::to_string(state.quota.max_memory_entries) +
        " entries (can never be admitted)");
    return decision;
  }
  uint32_t retry = 0;
  if (CheckCapacity(&state, charge, &retry) == AdmissionOutcome::kAdmit) {
    ++rollup.queries_admitted;
    ++rollup.running_queries;
    if (state.quota.max_memory_entries > 0) {
      rollup.memory_entries_in_use += charge;
    }
    decision.outcome = AdmissionOutcome::kAdmit;
    return decision;
  }
  if (rollup.queued_queries >= state.quota.max_queued_submits) {
    ++rollup.queries_rejected;
    decision.outcome = AdmissionOutcome::kReject;
    decision.status = Status::ResourceExhausted(
        "tenant '" + tenant + "' is over quota (" +
        std::to_string(rollup.running_queries) + " running, " +
        std::to_string(rollup.queued_queries) +
        " queued submits waiting — admission queue full); retry later");
    decision.retry_after_ms = std::max(retry, 1u);
    return decision;
  }
  ++rollup.queries_queued;
  ++rollup.queued_queries;
  rollup.queue_high_water =
      std::max(rollup.queue_high_water, rollup.queued_queries);
  state.queued_since.push_back(Clock::now());
  decision.outcome = AdmissionOutcome::kQueue;
  decision.retry_after_ms = std::max(retry, 1u);
  return decision;
}

void TenantGovernor::SettleQueuedTime(TenantState* state) {
  if (state->queued_since.empty()) return;
  const auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
      Clock::now() - state->queued_since.front());
  state->rollup.queued_time_ms +=
      static_cast<uint64_t>(std::max<int64_t>(waited.count(), 0));
  state->queued_since.pop_front();
}

bool TenantGovernor::TryAdmitQueued(const std::string& tenant,
                                    size_t memory_entries) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return false;
  TenantState& state = it->second;
  TenantRollup& rollup = state.rollup;
  if (rollup.queued_queries == 0) return false;
  const size_t charge = memory_entries > 0
                            ? memory_entries
                            : state.quota.default_query_memory_entries;
  uint32_t retry = 0;
  if (CheckCapacity(&state, charge, &retry) != AdmissionOutcome::kAdmit) {
    return false;
  }
  --rollup.queued_queries;
  SettleQueuedTime(&state);
  ++rollup.queries_admitted;
  ++rollup.running_queries;
  if (state.quota.max_memory_entries > 0) {
    rollup.memory_entries_in_use += charge;
  }
  return true;
}

void TenantGovernor::DropQueued(const std::string& tenant) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantRollup& rollup = it->second.rollup;
  if (rollup.queued_queries > 0) --rollup.queued_queries;
  // A cancel may remove a mid-queue entry while this settles the oldest
  // timestamp: queued_time_ms stays exact in total, only its attribution
  // across the tenant's own submits can shift.
  SettleQueuedTime(&it->second);
}

void TenantGovernor::OnQueryFinished(const std::string& tenant,
                                     size_t memory_entries,
                                     const QueryStats& stats,
                                     const Status& error) {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  TenantRollup& rollup = state.rollup;
  if (rollup.running_queries > 0) --rollup.running_queries;
  if (state.quota.max_memory_entries > 0) {
    const size_t charge = memory_entries > 0
                              ? memory_entries
                              : state.quota.default_query_memory_entries;
    rollup.memory_entries_in_use -=
        std::min<uint64_t>(rollup.memory_entries_in_use, charge);
  }
  ++rollup.queries_completed;
  if (stats.cancelled) ++rollup.queries_cancelled;
  if (!error.ok()) ++rollup.queries_failed;
  rollup.num_results += stats.num_results;
  rollup.tuples_routed += stats.tuples_routed;
  rollup.tuples_retired += stats.tuples_retired;
  rollup.spill_ios += stats.spill_ios;
  rollup.bytes_spilled += stats.bytes_spilled;
  rollup.builds_avoided += stats.builds_avoided;
}

void TenantGovernor::OnSpillProgress(const std::string& tenant,
                                     uint64_t spill_io_delta) {
  if (spill_io_delta == 0) return;
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return;
  TenantState& state = it->second;
  WindowSpillIos(&state, Clock::now());  // roll the window forward
  state.window_spill_ios += spill_io_delta;
}

TenantRollup TenantGovernor::Rollup(const std::string& tenant) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  return it == tenants_.end() ? TenantRollup{} : it->second.rollup;
}

size_t TenantGovernor::MemoryCharge(const std::string& tenant,
                                    size_t declared_entries) const {
  MutexLock lock(&mu_);
  auto it = tenants_.find(tenant);
  if (it == tenants_.end()) return 0;
  return declared_entries > 0 ? declared_entries
                              : it->second.quota.default_query_memory_entries;
}

}  // namespace stems::server
