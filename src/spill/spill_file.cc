#include "spill/spill_file.h"

namespace stems {

namespace {
/// Approximate serialized size of one entry: a header plus one fixed-width
/// cell per value (spill accounting, not real storage).
uint64_t ApproxEntryBytes(const Row& row) {
  return 16 + 8 * static_cast<uint64_t>(row.num_values());
}
}  // namespace

SpillFile::SpillFile(BufferPool* pool, size_t partitions, size_t page_entries)
    : pool_(pool),
      file_id_(pool->RegisterFile()),
      page_entries_(page_entries == 0 ? 1 : page_entries),
      runs_(partitions == 0 ? 1 : partitions) {}

PageKey SpillFile::KeyOf(size_t partition, size_t page) const {
  // Pages are per partition: pack the partition into the page number's high
  // bits so two partitions of one file never collide. 16 bits of partition
  // and 24 bits of page inside the 40-bit page field — RunOptions
  // validation caps SpillOptions::partitions accordingly.
  return MakePageKey(file_id_, (static_cast<uint64_t>(partition) << 24) |
                                   static_cast<uint64_t>(page));
}

size_t SpillFile::PagesIn(size_t partition) const {
  const size_t n = runs_[partition].size();
  return (n + page_entries_ - 1) / page_entries_;
}

SimTime SpillFile::Append(size_t partition, RowRef row, BuildTs ts) {
  std::vector<SpilledEntry>& run = runs_[partition];
  const uint64_t w0 = pool_->stats().disk_writes();
  SimTime cost = 0;
  const size_t page = run.size() / page_entries_;
  if (run.size() % page_entries_ == 0) {
    // First entry of a fresh tail page: allocate its frame (no read).
    cost += pool_->Create(KeyOf(partition, page));
  } else {
    const PageKey tail = KeyOf(partition, page);
    // A partially filled tail the pool evicted must be read back before it
    // can take more entries (read-modify-write) — appends to a cold tail
    // are not free.
    if (!pool_->Resident(tail)) cost += pool_->Fetch(tail);
    pool_->MarkDirty(tail);
  }
  bytes_written_ += ApproxEntryBytes(*row);
  run.push_back(SpilledEntry{std::move(row), ts});
  ++appends_;
  ++entries_total_;
  if (run.size() % page_entries_ == 0) {
    // The tail page just filled: write it through (write-behind flush).
    cost += pool_->WriteThrough(KeyOf(partition, page));
  }
  disk_writes_ += pool_->stats().disk_writes() - w0;
  return cost;
}

SimTime SpillFile::FlushPartition(size_t partition) {
  const std::vector<SpilledEntry>& run = runs_[partition];
  if (run.empty() || run.size() % page_entries_ == 0) return 0;  // no tail
  const PageKey tail = KeyOf(partition, PagesIn(partition) - 1);
  // A tail page evicted from the pool was already written back then.
  if (!pool_->Resident(tail)) return 0;
  const uint64_t w0 = pool_->stats().disk_writes();
  const SimTime cost = pool_->WriteThrough(tail);
  disk_writes_ += pool_->stats().disk_writes() - w0;
  return cost;
}

SimTime SpillFile::ReadAll(size_t partition, std::vector<SpilledEntry>* out) {
  const std::vector<SpilledEntry>& run = runs_[partition];
  if (run.empty()) return 0;
  const uint64_t r0 = pool_->stats().disk_reads();
  const uint64_t w0 = pool_->stats().disk_writes();
  SimTime cost = 0;
  const size_t pages = PagesIn(partition);
  // Pin while scanning so the clock hand cannot evict a page mid-read.
  for (size_t p = 0; p < pages; ++p) {
    cost += pool_->Fetch(KeyOf(partition, p));
    pool_->Pin(KeyOf(partition, p));
  }
  for (size_t p = 0; p < pages; ++p) pool_->Unpin(KeyOf(partition, p));
  out->reserve(out->size() + run.size());
  for (const SpilledEntry& e : run) out->push_back(e);
  ++restores_;
  disk_reads_ += pool_->stats().disk_reads() - r0;
  disk_writes_ += pool_->stats().disk_writes() - w0;
  return cost;
}

void SpillFile::ClearPartition(size_t partition) {
  std::vector<SpilledEntry>& run = runs_[partition];
  const size_t pages = PagesIn(partition);
  for (size_t p = 0; p < pages; ++p) pool_->Invalidate(KeyOf(partition, p));
  entries_total_ -= run.size();
  run.clear();
  run.shrink_to_fit();
}

SimTime SpillFile::EstimateRestoreCost(size_t partition) const {
  const size_t pages = PagesIn(partition);
  SimTime cost = 0;
  for (size_t p = 0; p < pages; ++p) {
    if (!pool_->Resident(KeyOf(partition, p))) {
      cost += pool_->ExpectedReadCost();
    }
  }
  return cost;
}

}  // namespace stems
