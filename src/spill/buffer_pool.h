// BufferPool: a simulated page cache over spill run files.
//
// The pool holds a fixed number of page frames shared by every SpillFile
// of a query. Fetch() returns the *virtual* I/O cost of making a page
// resident: zero on a hit, one read-latency sample on a miss (plus a
// write-back sample when the clock hand evicts a dirty frame). Pages being
// appended to are Create()d without a read and flushed through when they
// fill, so run writing models a one-page write-behind buffer per file.
//
// Eviction is CLOCK (second chance): each hit sets a reference bit; the
// hand clears bits until it finds an unreferenced, unpinned frame. Pinned
// frames (pages mid-scan) are never evicted; if every frame is pinned the
// pool over-allocates and counts the overflow rather than deadlocking.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/clock.h"
#include "spill/spill_options.h"

namespace stems {

namespace obs {
class Counter;
class MetricsRegistry;
}  // namespace obs

/// Page address: (file id, page number) packed by the owning SpillFile.
using PageKey = uint64_t;

constexpr PageKey MakePageKey(uint32_t file_id, uint64_t page) {
  return (static_cast<PageKey>(file_id) << 40) | page;
}

struct BufferPoolStats {
  uint64_t hits = 0;
  uint64_t misses = 0;        ///< fetches that paid a disk read
  uint64_t evictions = 0;     ///< frames reclaimed by the clock hand
  uint64_t writebacks = 0;    ///< dirty frames written at eviction
  uint64_t writethroughs = 0; ///< pages flushed on append-fill
  uint64_t overflows = 0;     ///< allocations past capacity (all pinned)
  SimTime io_time = 0;        ///< total virtual I/O charged
  uint64_t disk_reads() const { return misses; }
  uint64_t disk_writes() const { return writebacks + writethroughs; }
};

class BufferPool {
 public:
  explicit BufferPool(const SpillOptions& options);

  /// Hands out file ids for SpillFiles sharing this pool.
  uint32_t RegisterFile() { return next_file_id_++; }

  /// Makes `page` resident. Returns the virtual cost: 0 on hit, a read
  /// sample on miss, plus a write-back sample if eviction hit a dirty frame.
  SimTime Fetch(PageKey page);

  /// Allocates a frame for a brand-new page (no disk read; the page is
  /// being written for the first time). Marks it dirty. Returns only the
  /// eviction write-back cost, if any.
  SimTime Create(PageKey page);

  /// Write-through of a (resident) page: charges one write sample and
  /// clears the dirty bit. Used when an append fills a run page.
  SimTime WriteThrough(PageKey page);

  void MarkDirty(PageKey page);
  void Pin(PageKey page);
  void Unpin(PageKey page);

  /// Drops a page without write-back (its file content was discarded,
  /// e.g. a run cleared by a partition fault-in).
  void Invalidate(PageKey page);

  bool Resident(PageKey page) const { return frame_of_.count(page) > 0; }

  /// Expected cost of one page read right now: the observed mean once any
  /// read happened, else one (stat-only) model sample. Policies use this
  /// to price probes against spilled partitions without mutating state.
  SimTime ExpectedReadCost() const;

  const BufferPoolStats& stats() const { return stats_; }
  size_t frames_in_use() const { return frame_of_.size(); }
  size_t capacity() const { return capacity_; }

  /// Observability: publish hit/miss/eviction/write traffic into the
  /// engine-wide registry (spill.pool_* counters, aggregated across pools).
  /// Null detaches; each stats site then pays one branch.
  void AttachRegistry(obs::MetricsRegistry* registry);

 private:
  struct Frame {
    PageKey page = 0;
    bool valid = false;
    bool referenced = false;
    bool dirty = false;
    uint32_t pins = 0;
  };

  /// Finds a frame for a new page, evicting via the clock hand if the pool
  /// is full. Accumulates any write-back cost into `*cost`.
  size_t AcquireFrame(SimTime* cost);

  SimTime SampleRead();
  SimTime SampleWrite();

  size_t capacity_;
  std::vector<Frame> frames_;
  std::unordered_map<PageKey, size_t> frame_of_;
  size_t clock_hand_ = 0;
  uint32_t next_file_id_ = 0;

  std::shared_ptr<LatencyModel> read_latency_;
  std::shared_ptr<LatencyModel> write_latency_;
  Rng rng_;
  SimTime total_read_cost_ = 0;
  uint64_t reads_sampled_ = 0;

  BufferPoolStats stats_;

  /// Engine-wide registry handles (null when detached).
  obs::Counter* reg_hits_ = nullptr;
  obs::Counter* reg_misses_ = nullptr;
  obs::Counter* reg_evictions_ = nullptr;
  obs::Counter* reg_writes_ = nullptr;
  obs::Counter* reg_io_vus_ = nullptr;
};

}  // namespace stems
