// SpillOptions: configuration of the spill-aware state storage subsystem.
//
// The paper's §6 argues that SteMs let the eddy "make memory allocation
// decisions in a globally optimal manner". Eviction alone degrades exact
// joins into window joins the moment the budget is hit; spilling keeps
// results exact by moving cold SteM partitions to simulated run files
// behind a shared buffer pool, priced through the same latency models the
// access methods use (sim/latency_model.h).
#pragma once

#include <cstdint>
#include <memory>

#include "sim/latency_model.h"

namespace stems {

/// What a SteM does with a probe whose matching hash partition is spilled.
enum class SpillProbePolicy {
  /// Pay the simulated read I/O and fault the partition back into memory
  /// before the probe is processed (synchronous, Grace-style fault).
  kFaultIn,
  /// Bounce the probe back to the eddy once the partition's asynchronous
  /// read completes (the §3.1 partition-clustered bounce-back, applied to
  /// probes): the SteM defers the probe, schedules the fault-in on the
  /// simulation clock, and re-emits the probe when the data is resident,
  /// letting the routing policy re-decide where it goes next.
  kBounce,
};

struct SpillOptions {
  /// Master switch; when off, the memory governor can only evict.
  bool enabled = false;

  /// Hash partitions per SteM (on the first indexed join column). Spill
  /// and fault-in happen at whole-partition granularity.
  size_t partitions = 8;

  /// Entries per simulated disk page; run-file I/O is charged per page.
  size_t page_entries = 64;

  /// Shared buffer-pool capacity, in page frames, across all SteMs of the
  /// query. Reads hitting a pooled page are free; misses pay read latency
  /// and may force a dirty write-back (clock eviction).
  size_t pool_frames = 32;

  /// Latency of one page read / write (defaults: FixedLatency 150us/100us,
  /// a disk-like asymmetry). Any sim/latency_model.h model plugs in.
  std::shared_ptr<LatencyModel> read_latency;
  std::shared_ptr<LatencyModel> write_latency;

  /// Seed for latency sampling inside the buffer pool.
  uint64_t seed = 7;

  SpillProbePolicy probe_policy = SpillProbePolicy::kFaultIn;

  /// kBounce progress bound: a probe deferred this many times switches to
  /// a synchronous fault-in, so partitions re-spilled while it was in
  /// flight can never starve it (bounded deferral, like the eddy's
  /// BoundedRepetition backstop).
  uint32_t max_probe_deferrals = 4;
};

}  // namespace stems
