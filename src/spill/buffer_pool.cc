#include "spill/buffer_pool.h"

#include "obs/metrics_registry.h"

namespace stems {

namespace {
constexpr SimTime kDefaultReadLatency = Micros(150);
constexpr SimTime kDefaultWriteLatency = Micros(100);
}  // namespace

BufferPool::BufferPool(const SpillOptions& options)
    : capacity_(options.pool_frames == 0 ? 1 : options.pool_frames),
      read_latency_(options.read_latency),
      write_latency_(options.write_latency),
      rng_(options.seed) {
  if (read_latency_ == nullptr) {
    read_latency_ = std::make_shared<FixedLatency>(kDefaultReadLatency);
  }
  if (write_latency_ == nullptr) {
    write_latency_ = std::make_shared<FixedLatency>(kDefaultWriteLatency);
  }
}

void BufferPool::AttachRegistry(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    reg_hits_ = reg_misses_ = reg_evictions_ = reg_writes_ = reg_io_vus_ =
        nullptr;
    return;
  }
  reg_hits_ = registry->GetCounter("spill.pool_hits");
  reg_misses_ = registry->GetCounter("spill.pool_misses");
  reg_evictions_ = registry->GetCounter("spill.pool_evictions");
  reg_writes_ = registry->GetCounter("spill.pool_writes");
  reg_io_vus_ = registry->GetCounter("spill.pool_io_vus");
}

SimTime BufferPool::SampleRead() {
  const SimTime t = read_latency_->Sample(0, rng_);
  total_read_cost_ += t;
  ++reads_sampled_;
  return t;
}

SimTime BufferPool::SampleWrite() { return write_latency_->Sample(0, rng_); }

SimTime BufferPool::ExpectedReadCost() const {
  if (reads_sampled_ > 0) {
    return total_read_cost_ / static_cast<SimTime>(reads_sampled_);
  }
  return kDefaultReadLatency;
}

size_t BufferPool::AcquireFrame(SimTime* cost) {
  if (frames_.size() < capacity_) {
    frames_.emplace_back();
    return frames_.size() - 1;
  }
  // CLOCK: two full sweeps give every referenced frame its second chance;
  // after that every unpinned frame has referenced == false.
  for (size_t step = 0; step < 2 * frames_.size(); ++step) {
    const size_t idx = clock_hand_;
    clock_hand_ = (clock_hand_ + 1) % frames_.size();
    Frame& f = frames_[idx];
    if (!f.valid) return idx;
    if (f.pins > 0) continue;
    if (f.referenced) {
      f.referenced = false;
      continue;
    }
    if (f.dirty) {
      *cost += SampleWrite();
      ++stats_.writebacks;
      if (reg_writes_ != nullptr) reg_writes_->Add();
    }
    ++stats_.evictions;
    if (reg_evictions_ != nullptr) reg_evictions_->Add();
    frame_of_.erase(f.page);
    f = Frame{};
    return idx;
  }
  // Every frame pinned: over-allocate rather than deadlock.
  ++stats_.overflows;
  frames_.emplace_back();
  return frames_.size() - 1;
}

SimTime BufferPool::Fetch(PageKey page) {
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) {
    frames_[it->second].referenced = true;
    ++stats_.hits;
    if (reg_hits_ != nullptr) reg_hits_->Add();
    return 0;
  }
  SimTime cost = 0;
  const size_t idx = AcquireFrame(&cost);
  Frame& f = frames_[idx];
  f.page = page;
  f.valid = true;
  f.referenced = true;
  f.dirty = false;
  f.pins = 0;
  frame_of_[page] = idx;
  cost += SampleRead();
  ++stats_.misses;
  stats_.io_time += cost;
  if (reg_misses_ != nullptr) reg_misses_->Add();
  if (reg_io_vus_ != nullptr) reg_io_vus_->Add(static_cast<uint64_t>(cost));
  return cost;
}

SimTime BufferPool::Create(PageKey page) {
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) {
    Frame& f = frames_[it->second];
    f.referenced = true;
    f.dirty = true;
    return 0;
  }
  SimTime cost = 0;
  const size_t idx = AcquireFrame(&cost);
  Frame& f = frames_[idx];
  f.page = page;
  f.valid = true;
  f.referenced = true;
  f.dirty = true;
  f.pins = 0;
  frame_of_[page] = idx;
  stats_.io_time += cost;
  if (reg_io_vus_ != nullptr && cost > 0) {
    reg_io_vus_->Add(static_cast<uint64_t>(cost));
  }
  return cost;
}

SimTime BufferPool::WriteThrough(PageKey page) {
  const SimTime cost = SampleWrite();
  ++stats_.writethroughs;
  stats_.io_time += cost;
  if (reg_writes_ != nullptr) reg_writes_->Add();
  if (reg_io_vus_ != nullptr) reg_io_vus_->Add(static_cast<uint64_t>(cost));
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) frames_[it->second].dirty = false;
  return cost;
}

void BufferPool::MarkDirty(PageKey page) {
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) frames_[it->second].dirty = true;
}

void BufferPool::Pin(PageKey page) {
  auto it = frame_of_.find(page);
  if (it != frame_of_.end()) ++frames_[it->second].pins;
}

void BufferPool::Unpin(PageKey page) {
  auto it = frame_of_.find(page);
  if (it != frame_of_.end() && frames_[it->second].pins > 0) {
    --frames_[it->second].pins;
  }
}

void BufferPool::Invalidate(PageKey page) {
  auto it = frame_of_.find(page);
  if (it == frame_of_.end()) return;
  frames_[it->second] = Frame{};
  frame_of_.erase(it);
}

}  // namespace stems
