// SpillFile: one SteM's partitioned run files, priced through a BufferPool.
//
// A SpillFile holds one append-only run per hash partition. Appends land in
// the partition's tail page inside the pool (write-behind) and are flushed
// through when the page fills; Restore() reads every page of a partition
// back through the pool (hits are free, misses pay read latency), hands the
// entries to the caller, and discards the run — the partition becomes
// resident again in the owning SteM.
//
// This is the §3.1 Grace partitioning story completed for memory pressure:
// "partition-clustered bounce-backs" wrote build tuples in partition order;
// spill files make the same partitions *individually evictable and
// restorable* under the §6 global memory budget, keeping joins exact where
// eviction would silently turn them into window joins.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/tuple.h"
#include "spill/buffer_pool.h"
#include "types/row.h"

namespace stems {

/// One spilled SteM entry: the row and its original build timestamp. The
/// timestamp travels with the row so a restored partition is
/// indistinguishable, for the TimeStamp constraint, from one that never
/// left memory.
struct SpilledEntry {
  RowRef row;
  BuildTs ts;
};

class SpillFile {
 public:
  SpillFile(BufferPool* pool, size_t partitions, size_t page_entries);

  /// Appends one entry to `partition`'s run. Returns the virtual I/O cost
  /// (page creation, fill write-through, possible pool write-back).
  SimTime Append(size_t partition, RowRef row, BuildTs ts);

  /// Reads `partition`'s run back (through the pool) and copies its
  /// entries into `*out` (appended). The run is RETAINED: while the
  /// restored partition stays unmodified in memory, re-spilling it is free
  /// (drop the memory copy, the run is still the truth) — the clean-page
  /// property that keeps fault-in/re-spill cycles from rewriting disk.
  /// Returns the virtual read cost.
  SimTime ReadAll(size_t partition, std::vector<SpilledEntry>* out);

  /// Discards `partition`'s run (entries and pool pages). Called before a
  /// rewrite when the in-memory partition diverged from the run.
  void ClearPartition(size_t partition);

  /// Writes the partition's (dirty) tail page through. Called when a
  /// spill-out completes: a run that relieved memory pressure must be
  /// durably on disk, not only in the pool's write-behind buffer.
  SimTime FlushPartition(size_t partition);

  /// Stat-only estimate of Restore(partition)'s cost right now: pages not
  /// resident in the pool times the expected read cost.
  SimTime EstimateRestoreCost(size_t partition) const;

  size_t EntriesIn(size_t partition) const { return runs_[partition].size(); }
  size_t entries_total() const { return entries_total_; }
  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t appends() const { return appends_; }
  uint64_t restores() const { return restores_; }
  /// Simulated disk I/Os attributed to this file (pool-stat deltas around
  /// this file's operations).
  uint64_t disk_reads() const { return disk_reads_; }
  uint64_t disk_writes() const { return disk_writes_; }
  uint64_t disk_ios() const { return disk_reads_ + disk_writes_; }

 private:
  PageKey KeyOf(size_t partition, size_t page) const;
  size_t PagesIn(size_t partition) const;

  BufferPool* pool_;
  uint32_t file_id_;
  size_t page_entries_;
  std::vector<std::vector<SpilledEntry>> runs_;
  size_t entries_total_ = 0;
  uint64_t bytes_written_ = 0;
  uint64_t appends_ = 0;
  uint64_t restores_ = 0;
  uint64_t disk_reads_ = 0;
  uint64_t disk_writes_ = 0;
};

}  // namespace stems
