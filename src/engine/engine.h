// Engine: the top-level façade of the stems system.
//
// The paper's central claim (§2.2) is that eddies + SteMs "obviate the need
// for query optimization": a query should be *submitted*, not
// hand-assembled. The Engine realizes that as an API. It owns the Catalog
// (what tables look like), the TableStore (their data) and the shared
// Simulation clock, and turns a QuerySpec plus RunOptions into a running
// eddy in one call:
//
//   Engine engine;
//   engine.AddTable(def, rows);                 // describe data
//   auto handle = engine.Submit(query).ValueOrDie();   // submit
//   while (auto t = handle.cursor().Next()) Use(**t);  // stream results
//
// Several queries may be live at once: each Submit() wires an independent
// eddy (its own modules, its own routing policy) onto the shared
// discrete-event clock, so their events interleave in virtual-time order —
// pumping any one cursor advances every live query. This is the first step
// toward concurrent-workload scenarios (ROADMAP north star).
//
// The planner's PlanQuery() remains the documented low-level escape hatch
// for callers that need to wire modules or policies by hand.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "eddy/eddy.h"
#include "engine/run_options.h"
#include "query/query_spec.h"
#include "storage/table_store.h"

namespace stems {

class Engine;
class QueryHandle;
class ResultCursor;

/// Execution statistics of one submitted query (snapshot; final once
/// QueryHandle::done()).
struct QueryStats {
  uint64_t num_results = 0;
  uint64_t tuples_routed = 0;
  uint64_t tuples_retired = 0;
  /// Wall-clock nanoseconds spent in the eddy's routing steps (policy +
  /// audit + dispatch); tuples_routed / this is the router's real
  /// throughput, the hot path RunOptions::batch_size amortizes.
  uint64_t routing_wall_ns = 0;
  size_t constraint_violations = 0;
  size_t parked = 0;
  /// Virtual time at which the engine *observed* completion; kSimTimeNever
  /// while running. With several interleaved queries this can lag the
  /// query's actual last event by up to one pump slice (other queries'
  /// events may advance the shared clock within the same slice).
  SimTime completed_at = kSimTimeNever;
  std::string policy;
  bool cancelled = false;

  // --- spill subsystem (all zero when RunOptions::spill is off) -------------
  /// Simulated disk page reads + writes by the spill run files.
  uint64_t spill_ios = 0;
  /// Bytes ever appended to spill run files.
  uint64_t bytes_spilled = 0;
  /// Live entries currently on disk.
  uint64_t entries_spilled = 0;
  /// SteM hash partitions currently resident / spilled (summed over SteMs).
  size_t partitions_resident = 0;
  size_t partitions_spilled = 0;
};

namespace internal {

/// Shared state of one submitted query, owned jointly by the Engine and any
/// outstanding QueryHandle/ResultCursor. Internal: use QueryHandle.
struct QueryExecution {
  Engine* engine = nullptr;
  QuerySpec query;  ///< owned copy; the eddy points into it
  std::unique_ptr<Eddy> eddy;
  std::string policy_name;
  size_t next_result = 0;  ///< cursor consumption position (shared)
  bool finished = false;
  bool cancelled = false;
  SimTime completed_at = kSimTimeNever;
};

}  // namespace internal

/// Pull-based streaming access to a query's results, layered over the
/// eddy's push output. Next() lazily advances the shared simulation just
/// far enough to produce the next result. All cursors of one query share
/// the consumption position (they are views of the same stream).
class ResultCursor {
 public:
  /// The next result in production order; std::nullopt once the query has
  /// finished and every result was returned, or after Cancel().
  std::optional<TuplePtr> Next();

  /// Runs the query to completion and returns all not-yet-consumed results.
  std::vector<TuplePtr> Drain();

  /// Results handed out so far.
  size_t consumed() const { return exec_->next_result; }

  // --- spill observability (src/spill/; zero when spill is disabled) --------
  /// Simulated disk page I/Os performed so far to keep this query's state
  /// exact under its memory budget.
  uint64_t spill_ios() const;
  /// Bytes appended to spill run files so far.
  uint64_t bytes_spilled() const;
  /// SteM hash partitions currently in memory (summed over SteMs).
  size_t partitions_resident() const;

 private:
  friend class QueryHandle;
  explicit ResultCursor(std::shared_ptr<internal::QueryExecution> exec)
      : exec_(std::move(exec)) {}

  std::shared_ptr<internal::QueryExecution> exec_;
};

/// Caller's grip on a submitted query: cursor, stats, cancellation. Copyable
/// (all copies refer to the same execution); must not outlive its Engine.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return exec_ != nullptr; }

  /// Streaming access to results. Cursors share one consumption position.
  ResultCursor cursor() const { return ResultCursor(exec_); }

  /// Runs this query to completion (results stay buffered for the cursor).
  void Wait();

  /// True once the query has produced every result (or was cancelled).
  bool done() const { return exec_->finished || exec_->cancelled; }

  /// Cooperatively cancels the query: pending and future tuples are
  /// dropped, cursors return std::nullopt, no further results appear. On an
  /// already-finished query this discards the unconsumed buffered results.
  void Cancel();

  QueryStats Stats() const;
  const MetricsRecorder& metrics() const;
  const QuerySpec& query() const { return exec_->query; }

  /// Low-level escape hatch (module stats, constraint violations, ...).
  Eddy* eddy() const { return exec_->eddy.get(); }

 private:
  friend class Engine;
  explicit QueryHandle(std::shared_ptr<internal::QueryExecution> exec)
      : exec_(std::move(exec)) {}

  std::shared_ptr<internal::QueryExecution> exec_;
};

class Engine {
 public:
  Engine() = default;
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- data definition -------------------------------------------------------

  /// Registers a table's definition and its rows in one step.
  Status AddTable(TableDef def, std::vector<RowRef> rows);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  TableStore& store() { return store_; }
  const TableStore& store() const { return store_; }
  Simulation& sim() { return sim_; }

  // --- query execution -------------------------------------------------------

  /// Validates `options`, plans `query` (one SteM per table, one AM per
  /// access method, one SM per selection around an eddy), instantiates the
  /// named routing policy from the registry, and starts the scans. The
  /// returned handle streams results; execution advances when a cursor is
  /// pumped or RunAll() is called.
  Result<QueryHandle> Submit(const QuerySpec& query, RunOptions options = {});

  /// Drives the shared clock until every live query completes.
  void RunAll();

  /// Queries submitted and not yet finished or cancelled.
  size_t active_queries() const;

 private:
  friend class ResultCursor;
  friend class QueryHandle;

  /// Advances the shared simulation until `exec` finishes, is cancelled, or
  /// has produced more than `target` results. Interleaves every live query.
  void PumpUntilResult(internal::QueryExecution* exec, size_t target);
  void PumpToCompletion(internal::QueryExecution* exec);
  /// Marks quiescent queries finished (draining their parked tuples).
  void CheckCompletions();

  Catalog catalog_;
  TableStore store_;
  Simulation sim_;
  std::vector<std::shared_ptr<internal::QueryExecution>> queries_;
};

}  // namespace stems
