// Engine: the top-level façade of the stems system.
//
// The paper's central claim (§2.2) is that eddies + SteMs "obviate the need
// for query optimization": a query should be *submitted* as intent, not
// hand-assembled. The Engine realizes that as a declarative API. It owns
// the Catalog (what tables look like), the TableStore (their data) and the
// shared Simulation clock, and turns a SQL string plus RunOptions into a
// running eddy in one call:
//
//   Engine engine;
//   engine.AddTable(def, rows);                          // describe data
//   auto handle = engine.Query(                          // submit SQL
//       "SELECT u.id, o.item FROM users u, orders o "
//       "WHERE u.id = o.user_id AND u.age >= 30 LIMIT 100").ValueOrDie();
//   ResultCursor cursor = handle.cursor();               // stream rows
//   while (auto row = cursor.NextRow()) Use(row->Get("o.item"));
//
// Serving-style hot path — parse and bind once, execute many times:
//
//   auto prepared = engine.Prepare(
//       "SELECT * FROM users u WHERE u.age >= $min").ValueOrDie();
//   auto handle = prepared.Bind(sql::SqlParams().Set("min",
//       Value::Int64(30))).Submit(options).ValueOrDie();
//
// Several queries may be live at once: each submission wires an
// independent eddy (its own modules, its own routing policy) onto the
// shared discrete-event clock, so their events interleave in virtual-time
// order — pumping any one cursor advances every live query.
//
// Engine::Submit(QuerySpec) with QueryBuilder remains the programmatic
// escape hatch; the planner's PlanQuery() is the layer below that.
#pragma once

#include <chrono>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "eddy/eddy.h"
#include "engine/run_options.h"
#include "exec/executor.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "query/query_spec.h"
#include "sql/binder.h"
#include "stem/stem_manager.h"
#include "storage/table_store.h"

namespace stems {

class Engine;
class QueryHandle;
class ResultCursor;
class ThreadPoolExecutor;

/// Execution statistics of one submitted query (snapshot; final once
/// QueryHandle::done()).
struct QueryStats {
  uint64_t num_results = 0;
  uint64_t tuples_routed = 0;
  uint64_t tuples_retired = 0;
  /// Wall-clock nanoseconds spent in the eddy's routing steps (policy +
  /// audit + dispatch); tuples_routed / this is the router's real
  /// throughput, the hot path RunOptions::batch_size amortizes.
  uint64_t routing_wall_ns = 0;
  size_t constraint_violations = 0;
  size_t parked = 0;

  // --- cross-query sharing (RunOptions::share_stems, docs/sharing.md) -------
  /// SteMs of this query that attached to storage another query had
  /// already populated.
  size_t stems_shared = 0;
  /// Builds whose physical insert (row, index postings, spilled copy) was
  /// skipped because a concurrent query had already stored the row.
  uint64_t builds_avoided = 0;
  /// Virtual time at which the engine *observed* completion; kSimTimeNever
  /// while running. With several interleaved queries this can lag the
  /// query's actual last event by up to one pump slice (other queries'
  /// events may advance the shared clock within the same slice).
  SimTime completed_at = kSimTimeNever;
  std::string policy;
  bool cancelled = false;

  // --- execution substrate (RunOptions::executor, docs/parallelism.md) ------
  /// "sim" or "threaded".
  std::string executor = "sim";
  /// Per-worker accumulators of a threaded run, in worker-id order (the
  /// scalar fields above are their merge); empty for sim runs.
  std::vector<WorkerCounters> worker_counters;

  // --- spill subsystem (all zero when RunOptions::spill is off) -------------
  /// Simulated disk page reads + writes by the spill run files.
  uint64_t spill_ios = 0;
  /// Bytes ever appended to spill run files.
  uint64_t bytes_spilled = 0;
  /// Live entries currently on disk.
  uint64_t entries_spilled = 0;
  /// SteM hash partitions currently resident / spilled (summed over SteMs).
  size_t partitions_resident = 0;
  size_t partitions_spilled = 0;
};

namespace internal {

/// Shared state of one submitted query, owned jointly by the Engine and any
/// outstanding QueryHandle/ResultCursor. Internal: use QueryHandle.
struct QueryExecution {
  Engine* engine = nullptr;
  QuerySpec query;  ///< owned copy; the eddy points into it
  /// Sim executions own an eddy on the shared clock; threaded executions
  /// own a completed ExecOutcome instead (eddy stays null — every eddy
  /// deref below the handle API is branched on this).
  std::unique_ptr<Eddy> eddy;
  std::optional<ExecOutcome> threaded;
  std::string policy_name;
  size_t next_result = 0;  ///< cursor consumption position (shared)
  bool finished = false;
  bool cancelled = false;
  SimTime completed_at = kSimTimeNever;
  /// Per-query trace sink (RunOptions::trace_every_n > 0); shared so the
  /// handle can export after the engine pruned the execution's eddy.
  std::shared_ptr<obs::Tracer> tracer;
  /// Engine-wide registry this query publishes into (null when
  /// RunOptions::publish_metrics is off).
  obs::MetricsRegistry* registry = nullptr;
  /// Wall clock: submission time, and submit-to-completion span (the
  /// engine.query_wall_us histogram's sample). For sim queries the span
  /// includes time the clock sat idle between cursor pumps.
  std::chrono::steady_clock::time_point submitted_wall;
  uint64_t wall_us = 0;
  /// Non-OK when the engine had to force completion (idle clock with a
  /// non-quiescent eddy): the buffered results may be incomplete. Surfaced
  /// through QueryHandle::status() / ResultCursor::status().
  Status error;
};

}  // namespace internal

/// Schema-aware view of one result row: the declared projection applied to
/// a composite result tuple. Columns are addressed by position (SELECT-list
/// order) or by their qualified label ("u.age"). Cheap to copy — it shares
/// the underlying tuple and points into the query's spec, so it must not
/// outlive the QueryHandle it came from.
class RowView {
 public:
  RowView() = default;

  bool valid() const { return tuple_ != nullptr; }
  size_t num_columns() const;

  /// Label / declared type / value of output column `i` (SELECT order).
  const std::string& name(size_t i) const;
  ValueType type(size_t i) const;
  const Value& value(size_t i) const;

  /// Value by qualified label; nullptr when the projection has no such
  /// column.
  const Value* Find(const std::string& label) const;
  /// Value by qualified label; aborts on an unknown label (use Find for
  /// the checked variant). `row.Get("R.a")` replaces raw slot indexing.
  const Value& Get(const std::string& label) const;

  /// The output schema (shared by every row of the query).
  const Schema& schema() const;

  /// "(u.id=1, o.item=10)".
  std::string ToString() const;

  /// Escape hatch: the underlying composite tuple (all slots, pre-
  /// projection).
  const TuplePtr& tuple() const { return tuple_; }

 private:
  friend class ResultCursor;
  RowView(TuplePtr tuple, const QuerySpec* query)
      : tuple_(std::move(tuple)), query_(query) {}

  TuplePtr tuple_;
  const QuerySpec* query_ = nullptr;
};

/// Pull-based streaming access to a query's results, layered over the
/// eddy's push output. Next() lazily advances the shared simulation just
/// far enough to produce the next result. All cursors of one query share
/// the consumption position (they are views of the same stream).
class ResultCursor {
 public:
  /// The next result in production order; std::nullopt once the query has
  /// finished and every result was returned, or after Cancel().
  std::optional<TuplePtr> Next();

  /// Next() with the query's projection applied: a schema-aware row.
  std::optional<RowView> NextRow();

  /// Runs the query to completion and returns all not-yet-consumed results.
  std::vector<TuplePtr> Drain();

  /// Drain() with the query's projection applied.
  std::vector<RowView> DrainRows();

  /// The query's output schema (labels + types, SELECT-list order).
  const Schema& schema() const;

  /// Results handed out so far.
  size_t consumed() const { return exec_->next_result; }

  /// Execution health: non-OK when the engine forced completion on a stuck
  /// dataflow — the stream ended but may be missing results. OK on normal
  /// completion and on cancellation.
  const Status& status() const { return exec_->error; }

  // --- spill observability (src/spill/; zero when spill is disabled) --------
  /// Simulated disk page I/Os performed so far to keep this query's state
  /// exact under its memory budget.
  uint64_t spill_ios() const;
  /// Bytes appended to spill run files so far.
  uint64_t bytes_spilled() const;
  /// SteM hash partitions currently in memory (summed over SteMs).
  size_t partitions_resident() const;

 private:
  friend class QueryHandle;
  explicit ResultCursor(std::shared_ptr<internal::QueryExecution> exec)
      : exec_(std::move(exec)) {}

  std::shared_ptr<internal::QueryExecution> exec_;
};

/// Caller's grip on a submitted query: cursor, stats, cancellation. Copyable
/// (all copies refer to the same execution); must not outlive its Engine.
class QueryHandle {
 public:
  QueryHandle() = default;

  bool valid() const { return exec_ != nullptr; }

  /// Streaming access to results. Cursors share one consumption position.
  ResultCursor cursor() const { return ResultCursor(exec_); }

  /// Runs this query to completion (results stay buffered for the cursor).
  void Wait();

  /// True once the query has produced every result (or was cancelled).
  bool done() const { return exec_->finished || exec_->cancelled; }

  /// Execution health: OK while running and on clean completion; non-OK
  /// when the engine forced completion because the shared clock went idle
  /// with this query's dataflow not quiescent (a module lost in-flight
  /// work) — the result set may be truncated. Check after done().
  const Status& status() const { return exec_->error; }

  /// Cooperatively cancels the query: pending and future tuples are
  /// dropped, cursors return std::nullopt, no further results appear. On an
  /// already-finished query this discards the unconsumed buffered results.
  void Cancel();

  QueryStats Stats() const;
  const MetricsRecorder& metrics() const;
  const QuerySpec& query() const { return exec_->query; }

  /// Per-module execution profile (tuples in/out, observed vs assumed
  /// selectivity, build/probe/match counts, spill I/O, busy/queue-wait
  /// virtual time). Snapshot while running, final once done(). The text
  /// rendering (Profile().ToTable()) is what EXPLAIN ANALYZE returns.
  obs::QueryProfile Profile() const;

  /// The query's trace spans as Chrome trace_event JSON (load in
  /// chrome://tracing or Perfetto). Tracing is enabled per query via
  /// RunOptions::trace_every_n; without it this returns an empty (but
  /// well-formed) trace document.
  std::string DumpTrace() const;

  /// Low-level escape hatch (module stats, constraint violations, ...).
  /// Null for threaded executions — they have no module graph.
  Eddy* eddy() const { return exec_->eddy.get(); }

 private:
  friend class Engine;
  explicit QueryHandle(std::shared_ptr<internal::QueryExecution> exec)
      : exec_(std::move(exec)) {}

  std::shared_ptr<internal::QueryExecution> exec_;
};

/// A prepared query with its parameter values filled in, ready to submit.
/// Produced by PreparedQuery::Bind; carries any bind error forward so the
/// serving idiom stays one chained expression:
///
///   prepared.Bind({Value::Int64(30)}).Submit(options)
///
/// A bind failure (arity, unknown name, type mismatch) surfaces from
/// Submit() as that error.
class BoundQuery {
 public:
  /// Submits the bound spec to the engine (same semantics as
  /// Engine::Submit). Returns the deferred bind error, if any.
  Result<QueryHandle> Submit(RunOptions options = {}) const;

  /// The bind outcome (OK when the parameters applied cleanly).
  const Status& status() const { return status_; }
  /// The executable spec; valid only when status().ok().
  const QuerySpec& spec() const { return spec_; }

 private:
  friend class PreparedQuery;
  BoundQuery(Engine* engine, QuerySpec spec) : engine_(engine),
                                               spec_(std::move(spec)) {}
  explicit BoundQuery(Status error) : status_(std::move(error)) {}

  Engine* engine_ = nullptr;
  Status status_;
  QuerySpec spec_;
};

/// A parsed-and-bound SQL statement, reusable across executions. The
/// expensive front-end work (lexing, parsing, name resolution, shape
/// validation) happened once in Engine::Prepare; Bind() only patches
/// parameter constants into a copy of the bound spec — the serving hot
/// path (bench_sql asserts it is >= 5x cheaper than re-parsing).
/// Copyable; must not outlive its Engine.
class PreparedQuery {
 public:
  PreparedQuery() = default;

  /// Fills the parameter placeholders ('?' in order, '$name' by name) and
  /// returns a submittable query. Errors are carried inside the BoundQuery
  /// (see above) so Bind(...).Submit(...) chains.
  BoundQuery Bind(const sql::SqlParams& params = {}) const;

  /// Shorthand for Bind({}).Submit(options) on parameterless statements.
  Result<QueryHandle> Submit(RunOptions options = {}) const;

  /// The bound spec template (parameter constants still unbound).
  const QuerySpec& spec() const { return bound_.spec; }
  /// Placeholder sites, in order of appearance.
  const std::vector<sql::ParamSite>& params() const { return bound_.params; }

 private:
  friend class Engine;
  PreparedQuery(Engine* engine, sql::BoundStatement bound)
      : engine_(engine), bound_(std::move(bound)) {}

  Engine* engine_ = nullptr;
  sql::BoundStatement bound_;
};

class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // --- data definition -------------------------------------------------------

  /// Registers a table's definition and its rows in one step.
  Status AddTable(TableDef def, std::vector<RowRef> rows);

  Catalog& catalog() { return catalog_; }
  const Catalog& catalog() const { return catalog_; }
  TableStore& store() { return store_; }
  const TableStore& store() const { return store_; }
  Simulation& sim() { return sim_; }
  /// The cross-query SteM pool (RunOptions::share_stems; docs/sharing.md).
  StemManager& stem_pool() { return stem_pool_; }

  // --- query execution -------------------------------------------------------

  /// One-shot SQL submission: parses, binds against the catalog, and
  /// submits in one call. The statement must be parameter-free (use
  /// Prepare for '?' / '$name' placeholders). See docs/sql.md for the
  /// dialect.
  Result<QueryHandle> Query(const std::string& sql, RunOptions options = {});

  /// Compiles a SQL statement (lex, parse, resolve, validate) into a
  /// reusable PreparedQuery. Parameter values bind later, per execution —
  /// the serving hot path skips every front-end stage.
  Result<PreparedQuery> Prepare(const std::string& sql);

  /// Runs `sql` to completion and returns the rendered per-module profile
  /// (the long-hand form of submitting "EXPLAIN ANALYZE <sql>" and reading
  /// its one-row result; see docs/observability.md).
  Result<std::string> ExplainAnalyze(const std::string& sql,
                                     RunOptions options = {});

  /// Programmatic escape hatch: submits a QueryBuilder-built spec.
  /// Validates `options`, plans `query` (one SteM per table, one AM per
  /// access method, one SM per selection around an eddy), instantiates the
  /// named routing policy from the registry, and starts the scans. The
  /// returned handle streams results; execution advances when a cursor is
  /// pumped or RunAll() is called.
  Result<QueryHandle> Submit(const QuerySpec& query, RunOptions options = {});

  /// Drives the shared clock until every live query completes.
  void RunAll();

  /// Queries submitted and not yet finished or cancelled.
  size_t active_queries() const;

  // --- observability (docs/observability.md) ---------------------------------

  /// The engine-wide metric registry every query publishes into (unless
  /// RunOptions::publish_metrics is off): eddy routing counters, SteM
  /// build/probe/match traffic, spill I/O, executor contention, and the
  /// engine.query_wall_us completion histogram. The server exposes it as
  /// Prometheus text (Server::MetricsText()).
  obs::MetricsRegistry& metrics_registry() { return registry_; }
  const obs::MetricsRegistry& metrics_registry() const { return registry_; }

 private:
  friend class ResultCursor;
  friend class QueryHandle;

  /// Advances the shared simulation until `exec` finishes, is cancelled, or
  /// has produced more than `target` results. Interleaves every live query.
  void PumpUntilResult(internal::QueryExecution* exec, size_t target);
  void PumpToCompletion(internal::QueryExecution* exec);
  /// Marks quiescent queries finished (draining their parked tuples).
  void CheckCompletions();
  /// Completion bookkeeping shared by every finish path: stamps
  /// completed_at / wall_us and publishes the completion metrics.
  void MarkFinished(internal::QueryExecution* exec);

  Catalog catalog_;
  TableStore store_;
  /// Declared before sim_ (so destroyed after it): pooled SteM storages
  /// can be kept alive past their queries by in-flight fault-in events on
  /// the clock, and their spill files write through stem_pool_'s buffer
  /// pools.
  StemManager stem_pool_;
  Simulation sim_;
  /// Engine-wide metric registry (handles are pointer-stable; queries,
  /// executors and the server all publish into it).
  obs::MetricsRegistry registry_;
  std::vector<std::shared_ptr<internal::QueryExecution>> queries_;
  /// Lazily created wall-clock executor (RunOptions::executor=threaded).
  /// One per engine: concurrent threaded Submits serialize on its run
  /// mutex instead of oversubscribing the machine.
  std::unique_ptr<ThreadPoolExecutor> threaded_pool_;
};

}  // namespace stems
