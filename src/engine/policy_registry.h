// PolicyRegistry: routing policies addressable by name.
//
// The paper's premise is that the routing policy is the *only* pluggable
// decision left in the system (§2.2: eddies + SteMs "obviate the need for
// query optimization"). The registry completes that story at the API level:
// policies self-register under a stable name via STEMS_REGISTER_POLICY, so
// callers select them with a string in RunOptions ("lottery",
// "benefit_cost", "nary_shj", ...) and adding a policy requires zero
// planner/engine edits. Benches enumerate Names() to sweep every policy.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "eddy/routing_policy.h"

namespace stems {

/// Construction knobs handed to a policy factory. Factories read the fields
/// they understand and ignore the rest, so one parameter bundle serves all
/// registered policies.
struct PolicyParams {
  /// Seed for stochastic policies (lottery, benefit-cost exploration).
  uint64_t seed = 42;
  /// Fixed slot preference order for static-order policies (nary_shj).
  std::vector<int> probe_order;
  /// Named numeric knobs for policy-specific options; unknown keys are
  /// ignored. Built-ins read: "min_weight", "queue_penalty" (lottery);
  /// "explore_epsilon", "prior_matches" (benefit_cost).
  std::map<std::string, double> knobs;

  /// The knob's value, or `fallback` when unset.
  double KnobOr(const std::string& name, double fallback) const {
    auto it = knobs.find(name);
    return it == knobs.end() ? fallback : it->second;
  }
};

using PolicyFactory =
    std::function<std::unique_ptr<RoutingPolicy>(const PolicyParams&)>;

/// Name-keyed factory table. Lookup normalizes '-' to '_' so the
/// RoutingPolicy::name() spellings ("nary-shj") resolve to the canonical
/// registry names ("nary_shj").
class PolicyRegistry {
 public:
  /// The process-wide registry all STEMS_REGISTER_POLICY sites target.
  static PolicyRegistry& Global();

  /// Registers a factory. Rejects duplicate names (after normalization).
  Status Register(const std::string& name, PolicyFactory factory);

  /// Instantiates the named policy, or kNotFound listing known names.
  Result<std::unique_ptr<RoutingPolicy>> Create(
      const std::string& name, const PolicyParams& params = {}) const;

  bool Contains(const std::string& name) const;

  /// Canonical names of every registered policy, sorted.
  std::vector<std::string> Names() const;

 private:
  std::map<std::string, PolicyFactory> factories_;
};

namespace internal {

/// Static-initialization hook used by STEMS_REGISTER_POLICY.
struct PolicyRegistrar {
  PolicyRegistrar(const char* name, PolicyFactory factory);
};

}  // namespace internal

/// Registers a policy factory with the global registry at static-init time.
/// Place one per policy in its .cc file:
///
///   STEMS_REGISTER_POLICY("lottery", [](const PolicyParams& p) {
///     LotteryPolicyOptions o;
///     o.seed = p.seed;
///     return std::make_unique<LotteryPolicy>(o);
///   });
#define STEMS_REGISTER_POLICY(name, ...)                    \
  static const ::stems::internal::PolicyRegistrar           \
      STEMS_CONCAT_(stems_policy_registrar_, __COUNTER__) { \
    name, __VA_ARGS__                                       \
  }

}  // namespace stems
