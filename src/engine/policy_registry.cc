#include "engine/policy_registry.h"

#include <algorithm>

#include "common/logging.h"

namespace stems {

namespace {

std::string Canonical(const std::string& name) {
  std::string out = name;
  std::replace(out.begin(), out.end(), '-', '_');
  return out;
}

}  // namespace

PolicyRegistry& PolicyRegistry::Global() {
  // Function-local static: safely initialized before any registrar runs.
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

Status PolicyRegistry::Register(const std::string& name,
                                PolicyFactory factory) {
  if (name.empty()) {
    return Status::InvalidArgument("policy name must be non-empty");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("policy factory must be non-null");
  }
  const std::string key = Canonical(name);
  if (!factories_.emplace(key, std::move(factory)).second) {
    return Status::AlreadyExists("routing policy '" + key +
                                 "' is already registered");
  }
  return Status::OK();
}

Result<std::unique_ptr<RoutingPolicy>> PolicyRegistry::Create(
    const std::string& name, const PolicyParams& params) const {
  auto it = factories_.find(Canonical(name));
  if (it == factories_.end()) {
    std::string known;
    for (const auto& n : Names()) {
      if (!known.empty()) known += ", ";
      known += n;
    }
    return Status::NotFound("unknown routing policy '" + name +
                            "' (registered: " + known + ")");
  }
  std::unique_ptr<RoutingPolicy> policy = it->second(params);
  if (policy == nullptr) {
    return Status::Internal("factory for policy '" + name +
                            "' returned null");
  }
  return policy;
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return factories_.count(Canonical(name)) > 0;
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(factories_.size());
  for (const auto& [name, factory] : factories_) names.push_back(name);
  return names;
}

namespace internal {

PolicyRegistrar::PolicyRegistrar(const char* name, PolicyFactory factory) {
  Status st = PolicyRegistry::Global().Register(name, std::move(factory));
  if (!st.ok()) {
    STEMS_LOG(Error) << "STEMS_REGISTER_POLICY(" << name
                     << "): " << st.ToString();
  }
}

}  // namespace internal

}  // namespace stems
