#include "engine/engine.h"

#include "common/logging.h"
#include "exec/threaded_executor.h"
#include "query/planner.h"

namespace stems {

namespace {

/// Events run per pump slice. Small enough that cursors stay responsive
/// with several queries interleaved, large enough to amortize the loop.
constexpr uint64_t kPumpChunk = 256;

}  // namespace

Engine::Engine() = default;
Engine::~Engine() = default;

Status Engine::AddTable(TableDef def, std::vector<RowRef> rows) {
  const std::string name = def.name;
  Schema schema = def.schema;
  // Pre-check the store so a failure cannot leave catalog and store
  // diverged (the store's only failure mode is a duplicate name, e.g. rows
  // pre-loaded through the store() escape hatch).
  if (store_.GetTable(name).ok()) {
    return Status::AlreadyExists("table '" + name +
                                 "' already has rows in the store");
  }
  STEMS_RETURN_NOT_OK(catalog_.AddTable(std::move(def)));
  return store_.AddTable(name, std::move(schema), std::move(rows));
}

Result<QueryHandle> Engine::Submit(const QuerySpec& query,
                                   RunOptions options) {
  STEMS_RETURN_NOT_OK(options.Validate());

  auto exec = std::make_shared<internal::QueryExecution>();
  exec->engine = this;
  // The eddy keeps a pointer to its QuerySpec for its whole lifetime; the
  // execution owns a copy so the handle outlives the caller's spec.
  exec->query = query;
  exec->policy_name = options.policy;
  // wall-clock: stamps real submission time for the engine.query_wall_us
  // histogram; the simulation itself runs on sim_'s virtual clock.
  exec->submitted_wall = std::chrono::steady_clock::now();
  if (options.publish_metrics) exec->registry = &registry_;
  if (options.trace_every_n > 0) {
    exec->tracer = std::make_shared<obs::Tracer>(options.trace_every_n,
                                                 options.trace_capacity);
  }

  if (options.executor == ExecutorKind::kThreaded) {
    // Wall-clock morsel-driven execution (docs/parallelism.md): runs to
    // completion on the pool inside Submit — the handle is born finished
    // and its cursors never touch the shared clock.
    if (threaded_pool_ == nullptr) {
      threaded_pool_ = std::make_unique<ThreadPoolExecutor>();
    }
    ExecOutcome outcome;
    ExecObs obs;
    obs.registry = exec->registry;
    obs.tracer = exec->tracer.get();
    STEMS_RETURN_NOT_OK(
        threaded_pool_->Execute(exec->query, options, store_, &outcome, obs));
    exec->threaded = std::move(outcome);
    exec->finished = true;
    MarkFinished(exec.get());
    queries_.push_back(exec);
    CheckCompletions();  // prune any retired handle-less executions
    return QueryHandle(exec);
  }

  ExecutionConfig cfg = options.EffectiveExec();
  cfg.eddy.registry = exec->registry;
  cfg.eddy.tracer = exec->tracer.get();
  STEMS_ASSIGN_OR_RETURN(
      exec->eddy,
      PlanQuery(exec->query, store_, &sim_, cfg,
                options.share_stems ? &stem_pool_ : nullptr));
  STEMS_ASSIGN_OR_RETURN(std::unique_ptr<RoutingPolicy> policy,
                         PolicyRegistry::Global().Create(
                             options.policy, options.policy_params));
  exec->eddy->SetPolicy(std::move(policy));
  // Seed the scans now: the query is live and interleaves with every other
  // live query as soon as anyone advances the shared clock.
  exec->eddy->Start();

  queries_.push_back(exec);
  // A query can be born quiescent (LIMIT 0 never seeds the scans); mark it
  // finished now so done() holds without a cursor pump.
  CheckCompletions();
  return QueryHandle(exec);
}

void Engine::MarkFinished(internal::QueryExecution* exec) {
  exec->completed_at = sim_.now();
  // wall-clock: closes the observability span opened at Submit; virtual
  // completion time is recorded separately (completed_at, sim_.now()).
  exec->wall_us = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - exec->submitted_wall)
          .count());
  if (exec->registry != nullptr) {
    exec->registry->GetCounter("engine.queries_completed")->Add();
    exec->registry->GetHistogram("engine.query_wall_us")
        ->Observe(exec->wall_us);
  }
}

void Engine::CheckCompletions() {
  for (auto& exec : queries_) {
    if (exec->finished || exec->cancelled) continue;
    if (exec->eddy != nullptr && exec->eddy->Quiescent()) {
      // Parked prior probers can never be woken now; retiring them is the
      // RunToCompletion drain, audited by the constraint checker.
      exec->eddy->DrainParked();
      exec->finished = true;
      MarkFinished(exec.get());
    }
  }
  // Prune retired executions nobody holds a handle to anymore (the engine's
  // ref is the last one): a long-lived engine must not grow by a module
  // graph plus a buffered result set per past query. Quiescent() is part of
  // the predicate because a *cancelled* eddy may still have no-op events on
  // the shared clock holding raw module pointers (a halted scan's pending
  // emission); destroying it before they fire is a use-after-free.
  std::erase_if(queries_,
                [](const std::shared_ptr<internal::QueryExecution>& e) {
                  return (e->finished || e->cancelled) &&
                         (e->eddy == nullptr || e->eddy->Quiescent()) &&
                         e.use_count() == 1;
                });
}

void Engine::PumpUntilResult(internal::QueryExecution* exec, size_t target) {
  while (!exec->finished && !exec->cancelled &&
         exec->eddy->num_results() <= target) {
    if (sim_.RunSteps(kPumpChunk) == 0) {
      CheckCompletions();
      if (!exec->finished && !exec->cancelled) {
        // Should be unreachable: an idle clock with a non-quiescent eddy
        // means a module lost track of in-flight work. Fail closed rather
        // than spinning forever — but *say so*: the stream ends with a
        // non-OK QueryHandle::status() instead of silently passing off a
        // truncated buffer as the complete result set.
        STEMS_LOG(Error)
            << "engine: simulation idle but query not quiescent; "
               "forcing completion";
        exec->eddy->DrainParked();
        exec->error = Status::Internal(
            "query forced to completion: simulation went idle while the "
            "dataflow was not quiescent (a module lost in-flight work); "
            "the result set may be truncated");
        exec->finished = true;
        MarkFinished(exec);
      }
    } else {
      CheckCompletions();
    }
  }
}

void Engine::PumpToCompletion(internal::QueryExecution* exec) {
  PumpUntilResult(exec, SIZE_MAX);
}

void Engine::RunAll() {
  // Snapshot: pumping prunes handle-less retired executions from queries_,
  // which would invalidate an iterator over the member vector.
  std::vector<std::shared_ptr<internal::QueryExecution>> live = queries_;
  for (auto& exec : live) {
    if (!exec->finished && !exec->cancelled) {
      PumpToCompletion(exec.get());
    }
  }
}

size_t Engine::active_queries() const {
  size_t n = 0;
  for (const auto& exec : queries_) {
    if (!exec->finished && !exec->cancelled) ++n;
  }
  return n;
}

}  // namespace stems
