// ResultCursor and QueryHandle: the pull side of the Engine façade.
#include "engine/engine.h"

namespace stems {

std::optional<TuplePtr> ResultCursor::Next() {
  internal::QueryExecution* exec = exec_.get();
  if (exec->cancelled) return std::nullopt;
  if (exec->threaded.has_value()) {
    // Threaded executions are born finished: the buffer is complete and no
    // clock pumping is involved — Next() is a plain read.
    const auto& results = exec->threaded->results;
    if (exec->next_result < results.size()) {
      return results[exec->next_result++];
    }
    return std::nullopt;
  }
  const Eddy& eddy = *exec->eddy;
  if (exec->next_result >= eddy.num_results() && !exec->finished) {
    // Advance the shared clock just far enough for the push output to grow
    // past the cursor (or for the query to finish).
    exec->engine->PumpUntilResult(exec, exec->next_result);
  }
  if (exec->cancelled) return std::nullopt;
  if (exec->next_result < eddy.num_results()) {
    return eddy.results()[exec->next_result++];
  }
  return std::nullopt;
}

std::optional<RowView> ResultCursor::NextRow() {
  auto tuple = Next();
  if (!tuple.has_value()) return std::nullopt;
  return RowView(std::move(*tuple), &exec_->query);
}

std::vector<TuplePtr> ResultCursor::Drain() {
  std::vector<TuplePtr> out;
  while (auto t = Next()) {
    out.push_back(std::move(*t));
  }
  return out;
}

std::vector<RowView> ResultCursor::DrainRows() {
  std::vector<RowView> out;
  while (auto row = NextRow()) {
    out.push_back(std::move(*row));
  }
  return out;
}

const Schema& ResultCursor::schema() const {
  return exec_->query.output_schema();
}

size_t RowView::num_columns() const {
  return query_->output_columns().size();
}

const std::string& RowView::name(size_t i) const {
  return query_->output_columns()[i].label;
}

ValueType RowView::type(size_t i) const {
  return query_->output_columns()[i].type;
}

const Value& RowView::value(size_t i) const {
  static const Value kNull;
  const ColumnRef& ref = query_->output_columns()[i].ref;
  const Value* v = tuple_->ValueAt(ref.table_slot, ref.column);
  // Result tuples span every slot, so v is only null for malformed
  // hand-built tuples; degrade to SQL NULL rather than crash.
  return v != nullptr ? *v : kNull;
}

const Value* RowView::Find(const std::string& label) const {
  auto i = query_->FindOutputColumn(label);
  return i.has_value() ? &value(*i) : nullptr;
}

const Value& RowView::Get(const std::string& label) const {
  const Value* v = Find(label);
  if (v == nullptr) {
    internal::DieOnError(Status::NotFound(
        "no output column '" + label + "' in projection of: " +
        query_->ToString()));
  }
  return *v;
}

const Schema& RowView::schema() const { return query_->output_schema(); }

std::string RowView::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += name(i) + "=" + value(i).ToString();
  }
  out += ")";
  return out;
}

uint64_t ResultCursor::spill_ios() const {
  if (exec_->threaded.has_value()) return exec_->threaded->spill_ios;
  return exec_->eddy->SpillStats().spill_ios;
}

uint64_t ResultCursor::bytes_spilled() const {
  if (exec_->threaded.has_value()) return exec_->threaded->bytes_spilled;
  return exec_->eddy->SpillStats().bytes_spilled;
}

size_t ResultCursor::partitions_resident() const {
  if (exec_->threaded.has_value()) return exec_->threaded->partitions_resident;
  return exec_->eddy->SpillStats().partitions_resident;
}

void QueryHandle::Wait() {
  if (!exec_->finished && !exec_->cancelled) {
    exec_->engine->PumpToCompletion(exec_.get());
  }
}

void QueryHandle::Cancel() {
  if (exec_->cancelled) return;
  exec_->cancelled = true;
  // Threaded executions are always finished by the time a handle exists,
  // so this branch (live dataflow teardown) is sim-only.
  if (!exec_->finished) {
    // Still running: stop the dataflow too. (On a finished query, Cancel
    // only discards the buffered results the cursors have not consumed.)
    exec_->completed_at = exec_->engine->sim_.now();
    exec_->eddy->Cancel();
  }
}

QueryStats QueryHandle::Stats() const {
  if (exec_->threaded.has_value()) {
    const ExecOutcome& outcome = *exec_->threaded;
    QueryStats stats;
    stats.executor = "threaded";
    stats.num_results = outcome.results.size();
    stats.tuples_routed = outcome.totals.tuples_routed;
    stats.tuples_retired = outcome.totals.tuples_retired;
    stats.routing_wall_ns = outcome.totals.routing_wall_ns;
    stats.constraint_violations = outcome.violations.size();
    stats.worker_counters = outcome.workers;
    stats.completed_at = exec_->completed_at;
    stats.policy = exec_->policy_name;
    stats.cancelled = exec_->cancelled;
    stats.spill_ios = outcome.spill_ios;
    stats.bytes_spilled = outcome.bytes_spilled;
    stats.entries_spilled = outcome.entries_spilled;
    stats.partitions_resident = outcome.partitions_resident;
    stats.partitions_spilled = outcome.partitions_spilled;
    return stats;
  }
  const Eddy& eddy = *exec_->eddy;
  QueryStats stats;
  stats.executor = "sim";
  stats.num_results = eddy.num_results();
  stats.tuples_routed = eddy.tuples_routed();
  stats.tuples_retired = eddy.tuples_retired();
  stats.routing_wall_ns = eddy.routing_wall_ns();
  stats.constraint_violations = eddy.violations().size();
  stats.parked = eddy.parked_count();
  stats.completed_at = exec_->completed_at;
  stats.policy = exec_->policy_name;
  stats.cancelled = exec_->cancelled;
  for (const auto& module : eddy.modules()) {
    if (module->kind() != ModuleKind::kStem) continue;
    const auto* stem = static_cast<const Stem*>(module.get());
    stats.builds_avoided += stem->builds_avoided();
    if (stem->attached_shared()) ++stats.stems_shared;
  }
  const Eddy::SpillSummary spill = eddy.SpillStats();
  stats.spill_ios = spill.spill_ios;
  stats.bytes_spilled = spill.bytes_spilled;
  stats.entries_spilled = spill.entries_spilled;
  stats.partitions_resident = spill.partitions_resident;
  stats.partitions_spilled = spill.partitions_spilled;
  return stats;
}

const MetricsRecorder& QueryHandle::metrics() const {
  if (exec_->threaded.has_value()) {
    // No module graph, no per-module time series; per-worker counters live
    // in Stats().worker_counters instead.
    static const MetricsRecorder kEmpty;
    return kEmpty;
  }
  return exec_->eddy->ctx()->metrics;
}

}  // namespace stems
