// ResultCursor and QueryHandle: the pull side of the Engine façade.
#include "engine/engine.h"
#include "stem/stem.h"

namespace stems {

std::optional<TuplePtr> ResultCursor::Next() {
  internal::QueryExecution* exec = exec_.get();
  if (exec->cancelled) return std::nullopt;
  if (exec->threaded.has_value()) {
    // Threaded executions are born finished: the buffer is complete and no
    // clock pumping is involved — Next() is a plain read.
    const auto& results = exec->threaded->results;
    if (exec->next_result < results.size()) {
      return results[exec->next_result++];
    }
    return std::nullopt;
  }
  const Eddy& eddy = *exec->eddy;
  if (exec->next_result >= eddy.num_results() && !exec->finished) {
    // Advance the shared clock just far enough for the push output to grow
    // past the cursor (or for the query to finish).
    exec->engine->PumpUntilResult(exec, exec->next_result);
  }
  if (exec->cancelled) return std::nullopt;
  if (exec->next_result < eddy.num_results()) {
    return eddy.results()[exec->next_result++];
  }
  return std::nullopt;
}

std::optional<RowView> ResultCursor::NextRow() {
  auto tuple = Next();
  if (!tuple.has_value()) return std::nullopt;
  return RowView(std::move(*tuple), &exec_->query);
}

std::vector<TuplePtr> ResultCursor::Drain() {
  std::vector<TuplePtr> out;
  while (auto t = Next()) {
    out.push_back(std::move(*t));
  }
  return out;
}

std::vector<RowView> ResultCursor::DrainRows() {
  std::vector<RowView> out;
  while (auto row = NextRow()) {
    out.push_back(std::move(*row));
  }
  return out;
}

const Schema& ResultCursor::schema() const {
  return exec_->query.output_schema();
}

size_t RowView::num_columns() const {
  return query_->output_columns().size();
}

const std::string& RowView::name(size_t i) const {
  return query_->output_columns()[i].label;
}

ValueType RowView::type(size_t i) const {
  return query_->output_columns()[i].type;
}

const Value& RowView::value(size_t i) const {
  static const Value kNull;
  const ColumnRef& ref = query_->output_columns()[i].ref;
  const Value* v = tuple_->ValueAt(ref.table_slot, ref.column);
  // Result tuples span every slot, so v is only null for malformed
  // hand-built tuples; degrade to SQL NULL rather than crash.
  return v != nullptr ? *v : kNull;
}

const Value* RowView::Find(const std::string& label) const {
  auto i = query_->FindOutputColumn(label);
  return i.has_value() ? &value(*i) : nullptr;
}

const Value& RowView::Get(const std::string& label) const {
  const Value* v = Find(label);
  if (v == nullptr) {
    internal::DieOnError(Status::NotFound(
        "no output column '" + label + "' in projection of: " +
        query_->ToString()));
  }
  return *v;
}

const Schema& RowView::schema() const { return query_->output_schema(); }

std::string RowView::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < num_columns(); ++i) {
    if (i > 0) out += ", ";
    out += name(i) + "=" + value(i).ToString();
  }
  out += ")";
  return out;
}

uint64_t ResultCursor::spill_ios() const {
  if (exec_->threaded.has_value()) return exec_->threaded->spill_ios;
  return exec_->eddy->SpillStats().spill_ios;
}

uint64_t ResultCursor::bytes_spilled() const {
  if (exec_->threaded.has_value()) return exec_->threaded->bytes_spilled;
  return exec_->eddy->SpillStats().bytes_spilled;
}

size_t ResultCursor::partitions_resident() const {
  if (exec_->threaded.has_value()) return exec_->threaded->partitions_resident;
  return exec_->eddy->SpillStats().partitions_resident;
}

void QueryHandle::Wait() {
  if (!exec_->finished && !exec_->cancelled) {
    exec_->engine->PumpToCompletion(exec_.get());
  }
}

void QueryHandle::Cancel() {
  if (exec_->cancelled) return;
  exec_->cancelled = true;
  // Threaded executions are always finished by the time a handle exists,
  // so this branch (live dataflow teardown) is sim-only.
  if (!exec_->finished) {
    // Still running: stop the dataflow too. (On a finished query, Cancel
    // only discards the buffered results the cursors have not consumed.)
    exec_->completed_at = exec_->engine->sim_.now();
    exec_->eddy->Cancel();
  }
}

QueryStats QueryHandle::Stats() const {
  if (exec_->threaded.has_value()) {
    const ExecOutcome& outcome = *exec_->threaded;
    QueryStats stats;
    stats.executor = "threaded";
    stats.num_results = outcome.results.size();
    stats.tuples_routed = outcome.totals.tuples_routed;
    stats.tuples_retired = outcome.totals.tuples_retired;
    stats.routing_wall_ns = outcome.totals.routing_wall_ns;
    stats.constraint_violations = outcome.violations.size();
    stats.worker_counters = outcome.workers;
    stats.completed_at = exec_->completed_at;
    stats.policy = exec_->policy_name;
    stats.cancelled = exec_->cancelled;
    stats.spill_ios = outcome.spill_ios;
    stats.bytes_spilled = outcome.bytes_spilled;
    stats.entries_spilled = outcome.entries_spilled;
    stats.partitions_resident = outcome.partitions_resident;
    stats.partitions_spilled = outcome.partitions_spilled;
    return stats;
  }
  const Eddy& eddy = *exec_->eddy;
  QueryStats stats;
  stats.executor = "sim";
  stats.num_results = eddy.num_results();
  stats.tuples_routed = eddy.tuples_routed();
  stats.tuples_retired = eddy.tuples_retired();
  stats.routing_wall_ns = eddy.routing_wall_ns();
  stats.constraint_violations = eddy.violations().size();
  stats.parked = eddy.parked_count();
  stats.completed_at = exec_->completed_at;
  stats.policy = exec_->policy_name;
  stats.cancelled = exec_->cancelled;
  for (const auto& module : eddy.modules()) {
    if (module->kind() != ModuleKind::kStem) continue;
    const auto* stem = static_cast<const Stem*>(module.get());
    stats.builds_avoided += stem->builds_avoided();
    if (stem->attached_shared()) ++stats.stems_shared;
  }
  const Eddy::SpillSummary spill = eddy.SpillStats();
  stats.spill_ios = spill.spill_ios;
  stats.bytes_spilled = spill.bytes_spilled;
  stats.entries_spilled = spill.entries_spilled;
  stats.partitions_resident = spill.partitions_resident;
  stats.partitions_spilled = spill.partitions_spilled;
  return stats;
}

obs::QueryProfile QueryHandle::Profile() const {
  obs::QueryProfile p;
  const QueryStats stats = Stats();
  p.executor = stats.executor;
  p.policy = stats.policy;
  p.num_results = stats.num_results;
  p.tuples_routed = stats.tuples_routed;
  p.tuples_retired = stats.tuples_retired;
  p.routing_wall_ns = stats.routing_wall_ns;
  p.wall_us = exec_->wall_us;
  p.spill_ios = stats.spill_ios;
  p.bytes_spilled = stats.bytes_spilled;
  if (exec_->completed_at != kSimTimeNever) {
    p.virtual_time_us = static_cast<uint64_t>(exec_->completed_at);
  }

  if (exec_->threaded.has_value()) {
    // No module graph: one row per worker, on the wall clock (the busy
    // column carries wall microseconds inside morsel processing).
    const ExecOutcome& outcome = *exec_->threaded;
    for (size_t w = 0; w < outcome.workers.size(); ++w) {
      const WorkerCounters& c = outcome.workers[w];
      obs::ModuleProfileRow row;
      row.name = "worker" + std::to_string(w);
      row.kind = "worker";
      row.tuples_in = c.tuples_routed;
      row.tuples_out = c.results;
      row.builds = c.builds;
      row.probes = c.probes;
      row.matches = c.matches;
      row.busy_vus = c.routing_wall_ns / 1000;
      if (c.tuples_routed > 0) {
        row.observed_selectivity = static_cast<double>(c.results) /
                                   static_cast<double>(c.tuples_routed);
      }
      p.modules.push_back(std::move(row));
    }
    return p;
  }

  for (const auto& module : exec_->eddy->modules()) {
    obs::ModuleProfileRow row;
    row.name = module->name();
    row.kind = ModuleKindName(module->kind());
    const ModuleStats& ms = module->stats();
    row.tuples_in = ms.tuples_in;
    row.tuples_out = ms.tuples_out;
    row.busy_vus = static_cast<uint64_t>(ms.busy_time);
    row.queue_wait_vus = static_cast<uint64_t>(ms.queue_wait_time);
    row.max_queue_len = ms.max_queue_len;
    if (ms.tuples_in > 0) {
      row.observed_selectivity = static_cast<double>(ms.tuples_out) /
                                 static_cast<double>(ms.tuples_in);
    }
    // The prior a conventional optimizer would have started from; the gap
    // to the observed column is the mis-estimation adaptive routing absorbs.
    row.assumed_selectivity =
        module->kind() == ModuleKind::kSelection ? 0.5 : 1.0;
    if (module->kind() == ModuleKind::kStem) {
      const auto* stem = static_cast<const Stem*>(module.get());
      row.builds = stem->builds();
      row.probes = stem->probes_processed();
      row.matches = stem->matches_emitted();
      row.spill_ios = stem->spill_ios();
      row.bytes_spilled = stem->bytes_spilled();
    }
    p.modules.push_back(std::move(row));
  }
  return p;
}

std::string QueryHandle::DumpTrace() const {
  if (exec_->tracer == nullptr) {
    // Well-formed empty trace, so consumers need no special casing.
    return "{\"traceEvents\":[],\"otherData\":{\"events_seen\":0,"
           "\"events_recorded\":0,\"every_n\":0}}";
  }
  return exec_->tracer->ToJson();
}

const MetricsRecorder& QueryHandle::metrics() const {
  if (exec_->threaded.has_value()) {
    // No module graph, no per-module time series; per-worker counters live
    // in Stats().worker_counters instead.
    static const MetricsRecorder kEmpty;
    return kEmpty;
  }
  return exec_->eddy->ctx()->metrics;
}

}  // namespace stems
