// RunOptions: everything Engine::Submit needs to know about *how* to run a
// query, in one validated struct.
//
// Folds the planner's ExecutionConfig (module timing, SteM behaviour) and
// the EddyOptions it embeds together with the routing-policy selection that
// used to require a concrete-policy #include. Named presets cover the
// recurring configurations of the paper's experiments; everything else is
// reachable through the `exec` escape hatch.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/policy_registry.h"
#include "exec/executor.h"
#include "query/planner.h"

namespace stems {

struct RunOptions {
  /// Registry name of the routing policy ("nary_shj", "lottery",
  /// "benefit_cost", ...). See PolicyRegistry::Names().
  std::string policy = "nary_shj";

  /// Knobs forwarded to the policy factory (seed, probe order, ...).
  PolicyParams policy_params;

  /// Tuples routed (and serviced) per scheduling step. 1 = the paper's
  /// per-tuple dataflow (the Paper() preset stays scalar); > 1 amortizes
  /// the policy consultation, constraint audit and event-queue hop across
  /// the batch (see EddyOptions::batch_size). Values > 1 take precedence
  /// over exec.eddy.batch_size. Batching never changes the result set —
  /// only virtual-time interleaving.
  size_t batch_size = 1;

  /// Global in-memory entry budget across all SteMs of the query
  /// (0 = unlimited). Nonzero values override
  /// exec.eddy.memory.global_entry_budget. With `spill` off, the governor
  /// evicts at the budget (window-join semantics); with it on, state
  /// spills and results stay exact.
  size_t memory_budget_entries = 0;

  /// Spill-aware state storage (§6 + §3.1, src/spill/): under memory
  /// pressure the governor moves cold SteM hash partitions to simulated
  /// partitioned run files behind a shared buffer pool instead of evicting
  /// them, and probes fault them back in (or are deferred behind the
  /// asynchronous read — see SpillOptions::probe_policy). Switches the
  /// governor's victim policy to kSpillColdest (unless
  /// exec.eddy.memory.victim_policy was explicitly set to an eviction
  /// policy); exact results, priced through the disk latency models in
  /// exec.eddy.spill.
  bool spill = false;

  /// Cross-query state sharing (paper §5, docs/sharing.md): SteMs attach
  /// to the engine-wide pool keyed by (table, indexed columns, spill
  /// config) instead of building private state. Concurrent queries over
  /// the same tables then store each row, index posting and spilled
  /// partition once; a late-attaching query skips the physical build work
  /// for rows already stored (QueryStats::builds_avoided) while its
  /// results stay exactly those of a private run (per-query visibility
  /// epochs). Windowed (max_entries) and Grace-mode SteMs always stay
  /// private. Incompatible with an evicting memory governor — under a
  /// budget, sharing requires the spilling victim policy.
  bool share_stems = false;

  /// Which execution substrate runs the query (docs/parallelism.md):
  /// kSim (default) is the deterministic virtual-clock dataflow; kThreaded
  /// is the wall-clock morsel-driven thread pool. The threaded envelope is
  /// narrower — scan-AM tables, BuildFirst semantics, no sharing — and
  /// Engine::Submit reports Unsupported for combinations outside it.
  ExecutorKind executor = ExecutorKind::kSim;

  /// Worker threads for the threaded executor (0 = hardware concurrency,
  /// clamped to [1, 8]). Ignored by the sim executor.
  size_t num_threads = 0;

  /// Trace-span sampling (src/obs/trace.h, docs/observability.md):
  /// 0 disables tracing entirely (no tracer is allocated; every
  /// instrumentation site costs one branch on a null pointer), 1 records
  /// every routing decision / module service span / worker morsel, N
  /// records every Nth per stream. Export via QueryHandle::DumpTrace()
  /// (Chrome trace_event JSON).
  uint64_t trace_every_n = 0;

  /// Ring capacity of the per-query tracer (most recent events win).
  size_t trace_capacity = 16384;

  /// Publish this query's counters into the engine-wide metric registry
  /// (Engine::metrics_registry(), Server::MetricsText()). On by default;
  /// benches turn it off to measure the instrumentation's own cost.
  bool publish_metrics = true;

  /// Full low-level knob set: module timing defaults and per-module
  /// overrides, SteM options, and the embedded EddyOptions.
  ExecutionConfig exec;

  /// Checks internal consistency and that `policy` is registered.
  Status Validate() const;

  /// The planner-ready ExecutionConfig: `exec` with the top-level
  /// shorthands folded in (batch_size, memory_budget_entries, and the
  /// spill toggle's victim-policy flip). The single place Engine::Submit
  /// and SimExecutor translate RunOptions for PlanQuery.
  ExecutionConfig EffectiveExec() const;

  // --- named presets --------------------------------------------------------

  /// The paper's default experimental setup: benefit/cost routing (§4.1)
  /// with probe bouncing left to Table 2's constraints.
  static RunOptions Paper();

  /// Memory-constrained execution (§6): a global SteM entry budget with the
  /// MemoryGovernor evicting across SteMs, plus adaptive SteM indexes so
  /// small states stay cheap.
  static RunOptions LowMemory(size_t global_entry_budget = 1024);

  /// §3.5 relaxed BuildFirst: singletons of `no_build_tables` probe without
  /// building (re-probing under LastMatchTimeStamp), for tables too large
  /// to hold in a SteM.
  static RunOptions RelaxedBuildFirst(std::vector<std::string> no_build_tables);

  /// Exact execution of workloads whose build state exceeds memory: a
  /// global entry budget with spilling enabled (kSpillColdest governor,
  /// partitioned run files, shared buffer pool) plus adaptive SteM indexes.
  /// Results are identical to an unlimited-memory run; only virtual time
  /// differs (the simulated disk I/O).
  static RunOptions LargerThanMemory(size_t memory_budget_entries = 1024);

  /// Multi-user serving (§5): cross-query SteM sharing on, so concurrent
  /// queries over the same tables pool their build state, with benefit/cost
  /// routing. The direct scaling preset for many-queries-per-engine
  /// workloads.
  static RunOptions MultiQuery();

  /// Wall-clock morsel-driven execution on `num_threads` workers
  /// (0 = hardware concurrency). Batch size 64 so each claimed morsel
  /// amortizes the chunk-cursor hop, as in the sim's batched routing.
  static RunOptions Threaded(size_t num_threads = 0);
};

}  // namespace stems
