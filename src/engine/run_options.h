// RunOptions: everything Engine::Submit needs to know about *how* to run a
// query, in one validated struct.
//
// Folds the planner's ExecutionConfig (module timing, SteM behaviour) and
// the EddyOptions it embeds together with the routing-policy selection that
// used to require a concrete-policy #include. Named presets cover the
// recurring configurations of the paper's experiments; everything else is
// reachable through the `exec` escape hatch.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "engine/policy_registry.h"
#include "query/planner.h"

namespace stems {

struct RunOptions {
  /// Registry name of the routing policy ("nary_shj", "lottery",
  /// "benefit_cost", ...). See PolicyRegistry::Names().
  std::string policy = "nary_shj";

  /// Knobs forwarded to the policy factory (seed, probe order, ...).
  PolicyParams policy_params;

  /// Tuples routed (and serviced) per scheduling step. 1 = the paper's
  /// per-tuple dataflow (the Paper() preset stays scalar); > 1 amortizes
  /// the policy consultation, constraint audit and event-queue hop across
  /// the batch (see EddyOptions::batch_size). Values > 1 take precedence
  /// over exec.eddy.batch_size. Batching never changes the result set —
  /// only virtual-time interleaving.
  size_t batch_size = 1;

  /// Full low-level knob set: module timing defaults and per-module
  /// overrides, SteM options, and the embedded EddyOptions.
  ExecutionConfig exec;

  /// Checks internal consistency and that `policy` is registered.
  Status Validate() const;

  // --- named presets --------------------------------------------------------

  /// The paper's default experimental setup: benefit/cost routing (§4.1)
  /// with probe bouncing left to Table 2's constraints.
  static RunOptions Paper();

  /// Memory-constrained execution (§6): a global SteM entry budget with the
  /// MemoryGovernor evicting across SteMs, plus adaptive SteM indexes so
  /// small states stay cheap.
  static RunOptions LowMemory(size_t global_entry_budget = 1024);

  /// §3.5 relaxed BuildFirst: singletons of `no_build_tables` probe without
  /// building (re-probing under LastMatchTimeStamp), for tables too large
  /// to hold in a SteM.
  static RunOptions RelaxedBuildFirst(std::vector<std::string> no_build_tables);
};

}  // namespace stems
