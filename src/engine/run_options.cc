#include "engine/run_options.h"

namespace stems {

Status RunOptions::Validate() const {
  if (!PolicyRegistry::Global().Contains(policy)) {
    // Reuse the registry's error message, which lists the known names.
    auto created = PolicyRegistry::Global().Create(policy, policy_params);
    return created.status();
  }
  const EddyOptions& eddy = exec.eddy;
  if (batch_size == 0 || eddy.batch_size == 0) {
    return Status::InvalidArgument("batch_size must be >= 1");
  }
  if (eddy.max_routes_per_tuple == 0) {
    return Status::InvalidArgument("max_routes_per_tuple must be > 0");
  }
  if (eddy.routing_overhead < 0) {
    return Status::InvalidArgument("routing_overhead must be >= 0");
  }
  if (!eddy.no_build_tables.empty() && !eddy.relax_build_first) {
    return Status::InvalidArgument(
        "no_build_tables is set but relax_build_first is false; the tables "
        "would silently build anyway");
  }
  const bool spill_enabled = spill || eddy.spill.enabled;
  if (eddy.memory.victim_policy == MemoryVictimPolicy::kSpillColdest &&
      !spill_enabled) {
    return Status::InvalidArgument(
        "victim_policy kSpillColdest requires spill to be enabled (set "
        "RunOptions::spill or exec.eddy.spill.enabled); without run files "
        "the governor could not shrink any SteM");
  }
  if (spill_enabled) {
    if (eddy.spill.partitions == 0) {
      return Status::InvalidArgument("spill.partitions must be >= 1");
    }
    if (eddy.spill.partitions > 65535) {
      // SpillFile packs the partition into 16 bits of the page key; more
      // would silently alias pages across partitions.
      return Status::InvalidArgument("spill.partitions must be <= 65535");
    }
    if (eddy.spill.page_entries == 0) {
      return Status::InvalidArgument("spill.page_entries must be >= 1");
    }
    if (eddy.spill.pool_frames == 0) {
      return Status::InvalidArgument("spill.pool_frames must be >= 1");
    }
  }
  if (share_stems) {
    const size_t budget = memory_budget_entries > 0
                              ? memory_budget_entries
                              : eddy.memory.global_entry_budget;
    // The governor may only shrink pooled SteMs by *spilling* (exact);
    // eviction would silently turn every attached query's join into a
    // window join. The effective victim policy is kSpillColdest either
    // explicitly or via the `spill` shorthand's flip in Engine::Submit.
    const bool spill_coldest =
        eddy.memory.victim_policy == MemoryVictimPolicy::kSpillColdest ||
        (spill &&
         eddy.memory.victim_policy == MemoryVictimPolicy::kLargestFirst);
    if (budget > 0 && !spill_coldest) {
      return Status::InvalidArgument(
          "share_stems with a memory budget requires the spilling governor "
          "(set RunOptions::spill or victim_policy kSpillColdest): evicting "
          "shared SteM state would window every attached query's join");
    }
  }
  if (exec.scan_defaults.period <= 0) {
    return Status::InvalidArgument("scan period must be > 0");
  }
  for (const auto& [name, scan] : exec.scan_overrides) {
    if (scan.period <= 0) {
      return Status::InvalidArgument("scan period for '" + name +
                                     "' must be > 0");
    }
  }
  if (executor == ExecutorKind::kThreaded && share_stems) {
    // The deeper query-shape checks need the bound spec and live in
    // ThreadPoolExecutor::ValidateSupported; this one is pure options.
    return Status::InvalidArgument(
        "executor=threaded is incompatible with share_stems (cross-query "
        "sharing is sim-only; see docs/parallelism.md)");
  }
  return Status::OK();
}

ExecutionConfig RunOptions::EffectiveExec() const {
  ExecutionConfig config = exec;
  // The top-level batch_size knob wins over the exec escape hatch (unless
  // left at its scalar default).
  if (batch_size > 1) {
    config.eddy.batch_size = batch_size;
  }
  // Memory-pressure shorthands: the budget knob overrides the escape hatch
  // when set, and the spill toggle turns on run files + the spilling victim
  // policy (exact results under the budget).
  if (memory_budget_entries > 0) {
    config.eddy.memory.global_entry_budget = memory_budget_entries;
  }
  if (spill) {
    config.eddy.spill.enabled = true;
    // Like the batch_size shorthand, defer to the escape hatch when the
    // caller explicitly picked a (window-semantics) victim policy.
    if (config.eddy.memory.victim_policy == MemoryVictimPolicy::kLargestFirst) {
      config.eddy.memory.victim_policy = MemoryVictimPolicy::kSpillColdest;
    }
  }
  return config;
}

RunOptions RunOptions::Paper() {
  RunOptions o;
  o.policy = "benefit_cost";
  return o;
}

RunOptions RunOptions::LowMemory(size_t global_entry_budget) {
  RunOptions o;
  o.exec.eddy.memory.global_entry_budget = global_entry_budget;
  o.exec.stem_defaults.index_impl = StemIndexImpl::kAdaptive;
  return o;
}

RunOptions RunOptions::RelaxedBuildFirst(
    std::vector<std::string> no_build_tables) {
  RunOptions o;
  o.exec.eddy.relax_build_first = true;
  o.exec.eddy.no_build_tables = std::move(no_build_tables);
  return o;
}

RunOptions RunOptions::LargerThanMemory(size_t memory_budget_entries) {
  RunOptions o;
  o.memory_budget_entries = memory_budget_entries;
  o.spill = true;
  o.exec.stem_defaults.index_impl = StemIndexImpl::kAdaptive;
  return o;
}

RunOptions RunOptions::MultiQuery() {
  RunOptions o;
  o.policy = "benefit_cost";
  o.share_stems = true;
  return o;
}

RunOptions RunOptions::Threaded(size_t num_threads) {
  RunOptions o;
  o.executor = ExecutorKind::kThreaded;
  o.num_threads = num_threads;
  o.batch_size = 64;
  return o;
}

}  // namespace stems
