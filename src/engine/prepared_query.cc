// The SQL front door of the Engine façade: one-shot Query(), and the
// Prepare/Bind/Submit serving path.
#include "engine/engine.h"

namespace stems {

Result<QueryHandle> Engine::Query(const std::string& sql,
                                  RunOptions options) {
  STEMS_ASSIGN_OR_RETURN(sql::BoundStatement bound,
                         sql::ParseAndBind(sql, catalog_));
  if (!bound.params.empty()) {
    return Status::InvalidQuery(
        "statement has " + std::to_string(bound.params.size()) +
        " parameter placeholder(s) (first: " +
        bound.params.front().ToString() +
        "); use Engine::Prepare and Bind to supply values");
  }
  if (bound.explain_analyze) {
    // EXPLAIN ANALYZE: the profile only means something for a finished
    // run, so drive it to completion now; the caller reads
    // handle.Profile() (Engine::ExplainAnalyze renders it as text).
    STEMS_ASSIGN_OR_RETURN(QueryHandle handle,
                           Submit(bound.spec, std::move(options)));
    handle.Wait();
    return handle;
  }
  return Submit(bound.spec, std::move(options));
}

Result<std::string> Engine::ExplainAnalyze(const std::string& sql,
                                           RunOptions options) {
  // Accepts both the bare query and the "EXPLAIN ANALYZE ..." form (Query
  // runs the latter to completion already; Wait() is then a no-op).
  STEMS_ASSIGN_OR_RETURN(QueryHandle handle, Query(sql, std::move(options)));
  handle.Wait();
  return handle.Profile().ToTable();
}

Result<PreparedQuery> Engine::Prepare(const std::string& sql) {
  STEMS_ASSIGN_OR_RETURN(sql::BoundStatement bound,
                         sql::ParseAndBind(sql, catalog_));
  if (bound.explain_analyze) {
    return Status::InvalidQuery(
        "EXPLAIN ANALYZE cannot be prepared: it runs its query to "
        "completion at submit; use Engine::Query or Engine::ExplainAnalyze");
  }
  return PreparedQuery(this, std::move(bound));
}

BoundQuery PreparedQuery::Bind(const sql::SqlParams& params) const {
  if (engine_ == nullptr) {
    return BoundQuery(
        Status::InvalidArgument("Bind() on a default-constructed "
                                "PreparedQuery"));
  }
  // The hot path: clone the bound template and patch constants in place —
  // no lexing, no parsing, no catalog lookups.
  QuerySpec spec = bound_.spec;
  Status bound_status =
      sql::Binder::BindParameters(&spec, bound_.params, params);
  if (!bound_status.ok()) return BoundQuery(std::move(bound_status));
  return BoundQuery(engine_, std::move(spec));
}

Result<QueryHandle> PreparedQuery::Submit(RunOptions options) const {
  return Bind().Submit(std::move(options));
}

Result<QueryHandle> BoundQuery::Submit(RunOptions options) const {
  STEMS_RETURN_NOT_OK(status_);
  return engine_->Submit(spec_, std::move(options));
}

}  // namespace stems
