#include "am/index_am.h"

#include <cassert>

namespace stems {

IndexAm::IndexAm(QueryContext* ctx, std::string name, std::string table_name,
                 std::vector<int> bind_columns, const StoredTable* store,
                 IndexAmOptions options)
    : AccessModule(ctx, std::move(name), std::move(table_name)),
      bind_columns_(std::move(bind_columns)),
      store_(store),
      options_(std::move(options)),
      rng_(options_.seed) {
  assert(!bind_columns_.empty() && "index AM requires bind columns");
  if (options_.latency == nullptr) {
    options_.latency = std::make_shared<FixedLatency>(Millis(100));
  }
  if (options_.concurrency < 1) options_.concurrency = 1;
}

int IndexAm::ResolveTargetSlot(const Tuple& tuple) const {
  // Prefer the slot the eddy targeted; otherwise the first slot of this
  // table that the probe does not span.
  if (tuple.route_target_slot() >= 0) {
    for (int s : table_slots()) {
      if (s == tuple.route_target_slot()) return s;
    }
  }
  for (int s : table_slots()) {
    if (!tuple.Spans(s)) return s;
  }
  return canonical_slot();
}

std::vector<Value> IndexAm::ExtractBindValues(const Tuple& tuple,
                                              int target_slot) const {
  std::vector<Value> values;
  for (int bind_col : bind_columns_) {
    const Value* found = nullptr;
    for (const auto& p : ctx_->query->predicates()) {
      auto col = p.EquiJoinColumnFor(target_slot);
      if (!col.has_value() || *col != bind_col) continue;
      auto peer = p.EquiJoinPeerOf(target_slot);
      if (!peer.has_value() || peer->table_slot == target_slot) continue;
      const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
      if (v != nullptr) {
        found = v;
        break;
      }
    }
    if (found == nullptr) return {};  // cannot bind
    values.push_back(*found);
  }
  return values;
}

void IndexAm::Process(TuplePtr tuple) {
  if (tuple->is_seed()) return;  // seeds are for scans only; drop
  ++probes_accepted_;
  const int target_slot = ResolveTargetSlot(*tuple);
  std::vector<Value> bind_values = ExtractBindValues(*tuple, target_slot);
  assert(!bind_values.empty() &&
         "tuple routed to an index AM it cannot bind (validation bug)");

  const bool fresh = !options_.coalesce_duplicate_probes ||
                     (in_flight_.count(bind_values) == 0 &&
                      completed_.count(bind_values) == 0);
  if (fresh) {
    in_flight_.insert(bind_values);
    pending_.push_back({std::move(bind_values)});
    StartNextLookup();
  } else {
    ++probes_coalesced_;
    ctx_->metrics.Count(name() + ".coalesced", sim()->now());
  }

  // Asynchronously bounce the probe tuple back (paper Table 1). Its matches
  // rendezvous with it through the SteM on the probe's own table(s), so the
  // probe itself is done with this AM: probe completion (Def. 3) satisfied.
  tuple->MarkProbeCompleted();
  Emit(std::move(tuple));
}

void IndexAm::StartNextLookup() {
  if (pending_.empty() || active_lookups_ >= options_.concurrency) return;
  LookupRequest request = std::move(pending_.front());
  pending_.pop_front();
  ++active_lookups_;
  ++lookups_issued_;
  ctx_->metrics.Count(name() + ".probes", sim()->now());
  const SimTime latency = options_.latency->Sample(sim()->now(), rng_);
  total_lookup_latency_ += latency;
  ++lookups_completed_;
  sim()->Schedule(latency, [this, req = std::move(request)]() mutable {
    CompleteLookup(std::move(req));
  });
}

void IndexAm::CompleteLookup(LookupRequest request) {
  const int num_slots = static_cast<int>(ctx_->query->num_slots());
  const auto& matches = store_->Lookup(bind_columns_, request.bind_values);
  for (const auto& row : matches) {
    // Residual selections on this table prune here when the table occupies a
    // single slot (unambiguous); otherwise downstream SMs/SteMs enforce them.
    if (table_slots().size() == 1) {
      bool pass = true;
      auto singleton = Tuple::MakeSingleton(num_slots, canonical_slot(), row);
      for (const Predicate* sel : ctx_->query->SelectionsOn(canonical_slot())) {
        if (!sel->Evaluate(*singleton)) {
          pass = false;
          break;
        }
      }
      if (!pass) continue;
      ++matches_emitted_;
      Emit(std::move(singleton));
    } else {
      ++matches_emitted_;
      Emit(Tuple::MakeSingleton(num_slots, canonical_slot(), row));
    }
  }
  // End-Of-Transmission for this probing predicate (paper §2.1.3).
  const size_t num_cols = store_->schema().num_columns();
  Emit(Tuple::MakeSingleton(
      num_slots, canonical_slot(),
      MakeEotRow(num_cols, bind_columns_, request.bind_values)));

  in_flight_.erase(request.bind_values);
  completed_.insert(std::move(request.bind_values));
  --active_lookups_;
  StartNextLookup();
}

}  // namespace stems
