// Scan Access Module (paper §2.1.3).
//
// Accepts only the seed tuple, then streams every row of its data source at
// a configurable pace, finishing with a scan EOT tuple ("predicate true").
// Rate pacing models the source's delivery speed; a StallWindow-style pause
// schedule models flaky web sources for the competitive-AM experiments.
#pragma once

#include <functional>
#include <vector>

#include "am/access_module.h"
#include "sim/latency_model.h"

namespace stems {

struct ScanAmOptions {
  /// Virtual time between consecutive rows.
  SimTime period = Millis(1);
  /// Delay before the first row.
  SimTime initial_delay = 0;
  /// Windows during which the source is stalled: a row due inside a window
  /// is delivered at the window's end.
  std::vector<StallWindowLatency::Window> stall_windows;
  /// Admin cost of accepting the seed.
  SimTime service_time = Micros(1);
  /// §4.1 interactive priorities: rows matching this predicate are emitted
  /// as prioritized tuples (expedited by SteMs with kPrioritized bounce).
  std::function<bool(const Row&)> prioritizer;
};

class ScanAm : public AccessModule {
 public:
  ScanAm(QueryContext* ctx, std::string name, std::string table_name,
         std::vector<RowRef> rows, ScanAmOptions options = {});

  ModuleKind kind() const override { return ModuleKind::kScanAm; }

  /// Still streaming rows?
  bool Quiescent() const override {
    return Module::Quiescent() && !streaming_;
  }

  size_t rows_emitted() const { return next_row_; }
  size_t total_rows() const { return rows_.size(); }
  bool finished() const { return finished_; }
  SimTime period() const { return options_.period; }

  /// Stops the stream permanently (query cancellation): no further rows or
  /// EOT are emitted. An already-scheduled emission event fires once as a
  /// no-op; the scan reports Quiescent only after that, so owners can use
  /// Quiescent() as "no pending event references this module".
  void Halt();

 protected:
  SimTime ServiceTime(const Tuple&) const override {
    return options_.service_time;
  }
  void Process(TuplePtr tuple) override;

 private:
  void EmitNextRow();
  /// Earliest allowed delivery time for a row due at `due`, accounting for
  /// stall windows.
  SimTime ApplyStalls(SimTime due) const;

  std::vector<RowRef> rows_;
  ScanAmOptions options_;
  size_t next_row_ = 0;
  bool streaming_ = false;
  bool finished_ = false;
  bool seeded_ = false;
};

}  // namespace stems
