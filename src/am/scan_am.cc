#include "am/scan_am.h"

#include <cassert>

namespace stems {

RowRef MakeEotRow(size_t num_columns, const std::vector<int>& bind_columns,
                  const std::vector<Value>& bind_values) {
  std::vector<Value> values(num_columns, Value::Eot());
  assert(bind_columns.size() == bind_values.size());
  for (size_t i = 0; i < bind_columns.size(); ++i) {
    values[bind_columns[i]] = bind_values[i];
  }
  return MakeEotRowRef(std::move(values));
}

AccessModule::AccessModule(QueryContext* ctx, std::string name,
                           std::string table_name)
    : Module(ctx->sim, std::move(name)),
      ctx_(ctx),
      table_name_(std::move(table_name)) {
  table_slots_ = ctx_->SlotsOfTable(table_name_);
  assert(!table_slots_.empty() && "AM table does not appear in the query");
  canonical_slot_ = table_slots_.front();
}

ScanAm::ScanAm(QueryContext* ctx, std::string name, std::string table_name,
               std::vector<RowRef> rows, ScanAmOptions options)
    : AccessModule(ctx, std::move(name), std::move(table_name)),
      rows_(std::move(rows)),
      options_(std::move(options)) {}

void ScanAm::Process(TuplePtr tuple) {
  // Scans accept only the seed tuple (paper §2.1.3); anything else is a
  // routing bug caught in debug builds, and bounced back untouched
  // otherwise.
  if (!tuple->is_seed()) {
    assert(false && "scan AM received a non-seed tuple");
    Emit(std::move(tuple));
    return;
  }
  if (finished_) return;  // halted: a late seed must not restart the stream
  if (seeded_) return;    // duplicate seed: ignore
  seeded_ = true;
  streaming_ = true;
  SimTime due = sim()->now() + options_.initial_delay + options_.period;
  sim()->At(ApplyStalls(due), [this] { EmitNextRow(); });
}

SimTime ScanAm::ApplyStalls(SimTime due) const {
  for (const auto& w : options_.stall_windows) {
    if (due >= w.start && due < w.end) return w.end;
  }
  return due;
}

void ScanAm::Halt() {
  // next_row_ is left alone: rows_emitted() keeps reporting what was
  // actually delivered before the halt. streaming_ is also left alone — if
  // an emission event is already on the clock it still holds a pointer to
  // this module, so the scan must not report Quiescent until that event
  // has fired (and cleared streaming_ below).
  finished_ = true;
}

void ScanAm::EmitNextRow() {
  if (finished_) {  // halted after this emission was scheduled
    streaming_ = false;
    return;
  }
  const int num_slots = static_cast<int>(ctx_->query->num_slots());
  if (next_row_ < rows_.size()) {
    auto singleton =
        Tuple::MakeSingleton(num_slots, canonical_slot(), rows_[next_row_]);
    if (options_.prioritizer && options_.prioritizer(*rows_[next_row_])) {
      singleton->set_prioritized(true);
    }
    ++next_row_;
    ctx_->metrics.Count(name() + ".rows", sim()->now());
    Emit(std::move(singleton));
    SimTime due = sim()->now() + options_.period;
    sim()->At(ApplyStalls(due), [this] { EmitNextRow(); });
    return;
  }
  // All rows delivered: emit the scan EOT ("predicate true": all fields are
  // EOT markers) and go quiescent.
  const size_t num_cols =
      ctx_->query->slots()[canonical_slot()].def->schema.num_columns();
  auto eot =
      Tuple::MakeSingleton(num_slots, canonical_slot(),
                           MakeEotRow(num_cols, /*bind_columns=*/{},
                                      /*bind_values=*/{}));
  streaming_ = false;
  finished_ = true;
  Emit(std::move(eot));
}

}  // namespace stems
