// Index Access Module (paper §2.1.3, §3.3).
//
// Models an asynchronous (remote) index: a probe tuple binds the AM's bind
// columns through equi-join predicates; the lookup completes after a
// latency drawn from a LatencyModel, with at most `concurrency` lookups
// outstanding (the paper's sources are sleeps of identical duration with
// one outstanding request). On completion the AM emits each match as a
// singleton, then the EOT tuple encoding the probing predicate. Probe
// tuples themselves are asynchronously bounced back.
//
// Identical-key probes are coalesced: a probe whose bind values are already
// in flight or already completed triggers no second lookup (the shared SteM
// is the cache that makes the first lookup's results visible to everyone,
// paper §3.3: "the work of probing alternate AMs is not wasted").
#pragma once

#include <deque>
#include <memory>
#include <set>
#include <vector>

#include "am/access_module.h"
#include "sim/latency_model.h"
#include "storage/table_store.h"

namespace stems {

struct IndexAmOptions {
  /// Latency of one remote lookup; defaults to the paper's fixed sleep.
  /// Shared so option structs stay copyable; models are stateless (their
  /// randomness comes from the Rng passed at sample time).
  std::shared_ptr<LatencyModel> latency;
  /// Maximum outstanding lookups.
  int concurrency = 1;
  /// Admin cost of accepting a probe.
  SimTime service_time = Micros(1);
  /// Seed for the latency model.
  uint64_t seed = 42;
  /// Coalesce identical-key probes (in flight or completed). Disabling this
  /// is an ablation: it shows the redundant remote work the shared SteM +
  /// coalescing save (cf. the DEC Rdb competition discussion, §5).
  bool coalesce_duplicate_probes = true;
};

class IndexAm : public AccessModule {
 public:
  /// `bind_columns` are column ordinals of the table; `store` is the data
  /// the simulated remote source answers from.
  IndexAm(QueryContext* ctx, std::string name, std::string table_name,
          std::vector<int> bind_columns, const StoredTable* store,
          IndexAmOptions options);

  ModuleKind kind() const override { return ModuleKind::kIndexAm; }

  const std::vector<int>& bind_columns() const { return bind_columns_; }

  bool Quiescent() const override {
    return Module::Quiescent() && active_lookups_ == 0 && pending_.empty();
  }

  /// Number of real (non-coalesced) lookups issued so far.
  uint64_t lookups_issued() const { return lookups_issued_; }
  /// Probes absorbed by in-flight/completed coalescing.
  uint64_t probes_coalesced() const { return probes_coalesced_; }
  /// Match singletons emitted so far.
  uint64_t matches_emitted() const { return matches_emitted_; }
  /// Probes accepted (coalesced or not): the denominator for yield.
  uint64_t probes_accepted() const { return probes_accepted_; }
  /// Lookups queued or in flight right now (policy cost signal).
  size_t outstanding() const { return pending_.size() + active_lookups_; }
  /// Mean observed lookup latency; the configured default until observed.
  SimTime MeanLookupLatency() const {
    if (lookups_completed_ == 0) return Millis(100);
    return static_cast<SimTime>(total_lookup_latency_ /
                                static_cast<int64_t>(lookups_completed_));
  }

  /// Extracts the bind values for probing this AM from `tuple` for matches
  /// at `target_slot`, via the query's equi-join predicates. Empty result
  /// means the tuple cannot bind this AM (routing error).
  std::vector<Value> ExtractBindValues(const Tuple& tuple,
                                       int target_slot) const;

 protected:
  SimTime ServiceTime(const Tuple&) const override {
    return options_.service_time;
  }
  void Process(TuplePtr tuple) override;

 private:
  struct LookupRequest {
    std::vector<Value> bind_values;
  };

  void StartNextLookup();
  void CompleteLookup(LookupRequest request);
  int ResolveTargetSlot(const Tuple& tuple) const;

  std::vector<int> bind_columns_;
  const StoredTable* store_;
  IndexAmOptions options_;
  Rng rng_;

  std::deque<LookupRequest> pending_;
  int active_lookups_ = 0;
  uint64_t lookups_issued_ = 0;
  uint64_t probes_coalesced_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t probes_accepted_ = 0;
  uint64_t lookups_completed_ = 0;
  int64_t total_lookup_latency_ = 0;

  std::set<std::vector<Value>> in_flight_;
  std::set<std::vector<Value>> completed_;
};

}  // namespace stems
