// Access Modules (paper §2.1.3): shared declarations.
#pragma once

#include <vector>

#include "catalog/catalog.h"
#include "runtime/module.h"
#include "runtime/query_context.h"
#include "types/row.h"

namespace stems {

/// Builds the EOT row for a completed probe: bound columns carry their
/// probe values, all other columns carry the EOT marker (paper §2.1.3).
/// With no bound columns this is the scan EOT ("predicate true").
RowRef MakeEotRow(size_t num_columns, const std::vector<int>& bind_columns,
                  const std::vector<Value>& bind_values);

/// Common base for scan and index AMs: knows its table and which query
/// slots that table occupies.
class AccessModule : public Module {
 public:
  AccessModule(QueryContext* ctx, std::string name, std::string table_name);

  const std::string& table_name() const { return table_name_; }
  /// The slot AM-produced singletons are placed at (first slot of the
  /// table; SteMs store rows slot-agnostically, see stem/stem.h).
  int canonical_slot() const { return canonical_slot_; }
  const std::vector<int>& table_slots() const { return table_slots_; }

 protected:
  QueryContext* ctx_;

 private:
  std::string table_name_;
  std::vector<int> table_slots_;
  int canonical_slot_ = -1;
};

}  // namespace stems
