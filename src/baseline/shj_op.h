// ShjOp: the classic binary symmetric hash join [23, 30] (paper §2.3).
//
// Builds a hash table on each input side and probes the opposite one per
// arriving tuple; fully pipelined. Instances compose into the "pipelining
// binary joins" tree of paper Figure 2(i): a lower SHJ's output side feeds
// an upper SHJ's input side.
#pragma once

#include <unordered_map>
#include <vector>

#include "baseline/operator.h"

namespace stems {

struct ShjOpOptions {
  SimTime build_time = Micros(2);
  SimTime probe_time = Micros(2);
};

class ShjOp : public JoinOperator {
 public:
  /// `left_mask` / `right_mask` are slot masks of the two inputs;
  /// `key_predicate_id` identifies the equi-join predicate linking them.
  ShjOp(QueryContext* ctx, std::string name, uint64_t left_mask,
        uint64_t right_mask, int key_predicate_id, ShjOpOptions options = {});

  /// Tuples currently materialized in both hash tables (for the state-size
  /// comparison of §2.3).
  size_t materialized_tuples() const {
    return sides_[0].tuples + sides_[1].tuples;
  }

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void ProcessData(TuplePtr tuple, int side) override;

 private:
  struct Side {
    std::unordered_map<Value, std::vector<TuplePtr>, ValueHash> hash;
    ColumnRef key;  ///< the join key column on this side
    size_t tuples = 0;
  };

  const Value* KeyOf(const Tuple& tuple, int side) const;

  Side sides_[2];
  ShjOpOptions options_;
};

}  // namespace stems
