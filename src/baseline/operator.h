// Baseline operators: the traditional, statically-chosen join modules the
// paper compares against (Figures 1(a), 2(i), 2(ii), 5, 8).
//
// They run as modules on the same discrete-event simulator as the eddy, so
// time-series comparisons are apples-to-apples. A StaticPlan wires sources
// into operators into a sink, mimicking a conventional query plan.
#pragma once

#include <vector>

#include "runtime/module.h"
#include "runtime/query_context.h"

namespace stems {

/// Common base: a join operator with a fixed set of input "sides", each a
/// set of slots. An input tuple belongs to the side whose slot set contains
/// its span. Scan-EOT tuples mark a side complete; when every side is
/// complete the operator finalizes (no-op by default) and forwards one EOT
/// downstream.
class JoinOperator : public Module {
 public:
  JoinOperator(QueryContext* ctx, std::string name,
               std::vector<uint64_t> side_masks);

  ModuleKind kind() const override { return ModuleKind::kOperator; }

  bool AllSidesComplete() const;
  int SideOf(const Tuple& tuple) const;

 protected:
  void Process(TuplePtr tuple) final;

  /// Handles one data tuple (never an EOT).
  virtual void ProcessData(TuplePtr tuple, int side) = 0;
  /// Called once, when the last side completes (before the EOT forwards).
  virtual void Finalize() {}

  /// Evaluates and marks every not-yet-passed predicate evaluable on
  /// `tuple`; returns false if any fails.
  bool ApplyEvaluablePredicates(Tuple* tuple) const;

  QueryContext* ctx_;

 private:
  std::vector<uint64_t> side_masks_;
  std::vector<bool> side_complete_;
};

/// Terminal sink: counts result tuples into ctx->metrics ("results") and
/// stores them.
class CollectorSink : public Module {
 public:
  explicit CollectorSink(QueryContext* ctx)
      : Module(ctx->sim, "sink"), ctx_(ctx) {}

  ModuleKind kind() const override { return ModuleKind::kOperator; }

  const std::vector<TuplePtr>& results() const { return results_; }

 protected:
  SimTime ServiceTime(const Tuple&) const override { return 0; }
  void Process(TuplePtr tuple) override;

 private:
  QueryContext* ctx_;
  std::vector<TuplePtr> results_;
};

/// A statically chosen plan: sources and operators wired into a tree with a
/// collector at the root (paper Figure 1(a)).
class StaticPlan {
 public:
  StaticPlan(const QuerySpec& query, Simulation* sim);

  QueryContext* ctx() { return &ctx_; }

  /// Registers a module; the plan takes ownership.
  template <typename M>
  M* AddModule(std::unique_ptr<M> module) {
    M* raw = module.get();
    raw->set_id(static_cast<int>(modules_.size()));
    modules_.push_back(std::move(module));
    return raw;
  }

  /// Routes everything `from` emits into `to`.
  void Connect(Module* from, Module* to);
  /// Routes everything `from` emits into the collector sink.
  void ConnectToSink(Module* from);

  /// Seeds all scan AMs and runs the simulation to completion.
  void Run();
  /// Seeds all scan AMs only (caller drives the simulation).
  void Start();

  const std::vector<TuplePtr>& results() const { return sink_->results(); }

 private:
  QueryContext ctx_;
  std::vector<std::unique_ptr<Module>> modules_;
  CollectorSink* sink_ = nullptr;
  bool started_ = false;
};

}  // namespace stems
