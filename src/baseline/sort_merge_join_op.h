// SortMergeJoinOp: blocking sort-merge join — the algorithm a SteM with a
// tournament-tree (ordered) index simulates under deferred bounce-backs
// (paper §3.1).
//
// Buffers both inputs ("sorted runs"); when both are complete, sorts them
// by the join key (charging n log n virtual time) and merges, emitting
// results as the merge advances.
#pragma once

#include <vector>

#include "baseline/operator.h"

namespace stems {

struct SortMergeJoinOpOptions {
  SimTime buffer_time = Micros(2);        ///< per input tuple
  SimTime compare_time = Micros(1);       ///< per comparison during sort
  SimTime merge_step_time = Micros(2);    ///< per merge advance
};

class SortMergeJoinOp : public JoinOperator {
 public:
  SortMergeJoinOp(QueryContext* ctx, std::string name, uint64_t left_mask,
                  uint64_t right_mask, int key_predicate_id,
                  SortMergeJoinOpOptions options = {});

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void ProcessData(TuplePtr tuple, int side) override;
  void Finalize() override;

 private:
  const Value* KeyOf(const Tuple& tuple, int side) const;
  void JoinPair(const TuplePtr& left, const TuplePtr& right);

  SortMergeJoinOpOptions options_;
  ColumnRef keys_[2];
  std::vector<TuplePtr> runs_[2];
};

}  // namespace stems
