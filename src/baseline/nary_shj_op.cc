#include "baseline/nary_shj_op.h"

#include <cassert>

namespace stems {

namespace {
/// One input side per slot.
std::vector<uint64_t> SlotMasks(const QueryContext& ctx) {
  std::vector<uint64_t> masks;
  for (size_t s = 0; s < ctx.query->num_slots(); ++s) {
    masks.push_back(1ULL << s);
  }
  return masks;
}
}  // namespace

NaryShjOp::NaryShjOp(QueryContext* ctx, std::string name,
                     NaryShjOpOptions options)
    : JoinOperator(ctx, std::move(name), SlotMasks(*ctx)),
      options_(options),
      stores_(ctx->query->num_slots()) {}

SimTime NaryShjOp::ServiceTime(const Tuple& tuple) const {
  if (tuple.IsEot()) return options_.build_time;
  return options_.build_time +
         options_.probe_time_per_slot *
             static_cast<SimTime>(ctx_->query->num_slots() - 1);
}

void NaryShjOp::ProcessData(TuplePtr tuple, int side) {
  assert(tuple->IsSingleton());
  const RowRef& row = tuple->component(side).row;
  // Build into this slot's store and indexes.
  const uint32_t id = static_cast<uint32_t>(stores_[side].rows.size());
  for (const auto& p : ctx_->query->predicates()) {
    auto col = p.EquiJoinColumnFor(side);
    if (col.has_value()) {
      stores_[side].indexes[*col][row->value(*col)].push_back(id);
    }
  }
  stores_[side].rows.push_back(row);
  ++materialized_;
  // Probe: join the new singleton against everything stored.
  if (!ApplyEvaluablePredicates(tuple.get())) return;
  Join(tuple);
}

void NaryShjOp::Join(const TuplePtr& partial) {
  if (partial->spanned_mask() == ctx_->query->full_span_mask()) {
    Emit(partial);
    return;
  }
  // Next slot: the lowest unspanned slot joined to the current span, else
  // the lowest unspanned (cross product).
  const int n = static_cast<int>(ctx_->query->num_slots());
  int next = -1;
  for (int s = 0; s < n && next < 0; ++s) {
    if (partial->Spans(s)) continue;
    for (const auto& p : ctx_->query->predicates()) {
      if (!p.is_join()) continue;
      auto col = p.EquiJoinColumnFor(s);
      if (!col.has_value()) continue;
      auto peer = p.EquiJoinPeerOf(s);
      if (peer.has_value() && partial->Spans(peer->table_slot)) {
        next = s;
        break;
      }
    }
  }
  if (next < 0) {
    for (int s = 0; s < n; ++s) {
      if (!partial->Spans(s)) {
        next = s;
        break;
      }
    }
  }
  assert(next >= 0);

  // Candidate rows via an index when possible.
  const SlotStore& store = stores_[next];
  const std::vector<uint32_t>* candidates = nullptr;
  std::vector<uint32_t> all;
  for (const auto& p : ctx_->query->predicates()) {
    auto col = p.EquiJoinColumnFor(next);
    if (!col.has_value()) continue;
    auto peer = p.EquiJoinPeerOf(next);
    if (!peer.has_value() || !partial->Spans(peer->table_slot)) continue;
    const Value* v = partial->ValueAt(peer->table_slot, peer->column);
    auto idx_it = store.indexes.find(*col);
    if (idx_it == store.indexes.end()) continue;
    auto it = idx_it->second.find(*v);
    if (it == idx_it->second.end()) return;  // no matches at all
    candidates = &it->second;
    break;
  }
  if (candidates == nullptr) {
    all.resize(store.rows.size());
    for (uint32_t i = 0; i < all.size(); ++i) all[i] = i;
    candidates = &all;
  }

  for (uint32_t id : *candidates) {
    TuplePtr extended = partial->ConcatWith(next, store.rows[id], 0);
    if (!ApplyEvaluablePredicates(extended.get())) continue;
    Join(extended);
  }
}

}  // namespace stems
