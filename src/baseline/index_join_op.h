// IndexJoinOp: the traditional index join module of paper Figures 1(a)/5.
//
// Encapsulates the two physical operations the paper's §4.2 experiment is
// about: a lookup cache and a remote index, hidden inside one module with a
// single input queue. A cache miss occupies the (single-server) module for
// the full remote latency, so probes that would hit the cache wait behind
// it — the head-of-line blocking that SteMs eliminate.
#pragma once

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "baseline/operator.h"
#include "sim/latency_model.h"
#include "storage/table_store.h"

namespace stems {

struct IndexJoinOpOptions {
  std::shared_ptr<LatencyModel> lookup_latency;  ///< remote index latency
  SimTime cache_hit_time = Micros(2);
  uint64_t seed = 42;
};

class IndexJoinOp : public JoinOperator {
 public:
  /// Joins probe tuples against `table_slot` of the query via an index on
  /// `bind_columns` of `store`. `probe_mask` is the input-side slot mask.
  IndexJoinOp(QueryContext* ctx, std::string name, uint64_t probe_mask,
              int table_slot, std::vector<int> bind_columns,
              const StoredTable* store, IndexJoinOpOptions options);

  uint64_t index_lookups() const { return index_lookups_; }
  uint64_t cache_hits() const { return cache_hits_; }

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void ProcessData(TuplePtr tuple, int side) override;

 private:
  std::vector<Value> BindValuesFor(const Tuple& tuple) const;

  int table_slot_;
  std::vector<int> bind_columns_;
  const StoredTable* store_;
  IndexJoinOpOptions options_;
  mutable Rng rng_;

  /// Lookup cache: completed keys and their rows.
  std::map<std::vector<Value>, std::vector<RowRef>> cache_;
  uint64_t index_lookups_ = 0;
  uint64_t cache_hits_ = 0;
};

}  // namespace stems
