#include "baseline/shj_op.h"

#include <cassert>

namespace stems {

ShjOp::ShjOp(QueryContext* ctx, std::string name, uint64_t left_mask,
             uint64_t right_mask, int key_predicate_id, ShjOpOptions options)
    : JoinOperator(ctx, std::move(name), {left_mask, right_mask}),
      options_(options) {
  const Predicate& p = ctx->query->predicates()[key_predicate_id];
  assert(p.is_join() && p.op() == CompareOp::kEq &&
         "SHJ requires an equi-join key predicate");
  // Assign each end of the predicate to the side containing its slot.
  const ColumnRef& a = p.lhs();
  const ColumnRef& b = p.rhs();
  if (left_mask & (1ULL << a.table_slot)) {
    sides_[0].key = a;
    sides_[1].key = b;
  } else {
    sides_[0].key = b;
    sides_[1].key = a;
  }
  assert((left_mask & (1ULL << sides_[0].key.table_slot)) != 0);
  assert((right_mask & (1ULL << sides_[1].key.table_slot)) != 0);
}

const Value* ShjOp::KeyOf(const Tuple& tuple, int side) const {
  return tuple.ValueAt(sides_[side].key.table_slot, sides_[side].key.column);
}

SimTime ShjOp::ServiceTime(const Tuple& tuple) const {
  if (tuple.IsEot()) return options_.build_time;
  return options_.build_time + options_.probe_time;
}

void ShjOp::ProcessData(TuplePtr tuple, int side) {
  const Value* key = KeyOf(*tuple, side);
  if (key == nullptr) return;  // cannot join: drop
  // Build into this side's hash table...
  sides_[side].hash[*key].push_back(tuple);
  ++sides_[side].tuples;
  // ...then immediately probe the other side.
  const int other = 1 - side;
  auto it = sides_[other].hash.find(*key);
  if (it == sides_[other].hash.end()) return;
  for (const TuplePtr& match : it->second) {
    // Merge the two component sets.
    TuplePtr result = tuple;
    bool ok = true;
    for (int s = 0; s < match->num_slots(); ++s) {
      if (!match->Spans(s)) continue;
      if (result->Spans(s)) {
        ok = false;  // overlapping spans cannot join
        break;
      }
      result = result->ConcatWith(s, match->component(s).row,
                                  match->component(s).timestamp == kTsInfinity
                                      ? 0
                                      : match->component(s).timestamp);
    }
    if (!ok) continue;
    // Carry over predicate state from both parents, then verify the rest.
    for (size_t pid = 0; pid < ctx_->query->num_predicates(); ++pid) {
      if (match->PassedPredicate(static_cast<int>(pid)) ||
          tuple->PassedPredicate(static_cast<int>(pid))) {
        result->MarkPredicatePassed(static_cast<int>(pid));
      }
    }
    if (ApplyEvaluablePredicates(result.get())) {
      // Partial-result accounting, comparable with the SteM engine's
      // "span.<mask>" series.
      ctx_->metrics.Count("span." + std::to_string(result->spanned_mask()),
                          sim()->now());
      Emit(std::move(result));
    }
  }
}

}  // namespace stems
