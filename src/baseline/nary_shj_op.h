// NaryShjOp: the unified n-ary symmetric hash join of paper Figure 2(ii).
//
// One operator holding a hash index per join column of every input table.
// Each arriving singleton is built into its table's indexes and then joined
// against all previously stored singletons (a fixed probe order inside the
// operator — the SteM architecture's whole point is to lift exactly this
// ordering decision out into the eddy).
#pragma once

#include <unordered_map>
#include <vector>

#include "baseline/operator.h"

namespace stems {

struct NaryShjOpOptions {
  SimTime build_time = Micros(2);
  SimTime probe_time_per_slot = Micros(2);
};

class NaryShjOp : public JoinOperator {
 public:
  NaryShjOp(QueryContext* ctx, std::string name,
            NaryShjOpOptions options = {});

  /// Singletons materialized (state-size comparison of §2.3: this operator
  /// stores no intermediate results, unlike a binary-SHJ pipeline).
  size_t materialized_tuples() const { return materialized_; }

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void ProcessData(TuplePtr tuple, int side) override;

 private:
  struct SlotStore {
    std::vector<RowRef> rows;
    /// column -> value -> row ids
    std::unordered_map<int,
                       std::unordered_map<Value, std::vector<uint32_t>,
                                          ValueHash>>
        indexes;
  };

  /// Recursively extends `partial` with rows from unspanned slots.
  void Join(const TuplePtr& partial);

  NaryShjOpOptions options_;
  std::vector<SlotStore> stores_;
  size_t materialized_ = 0;
};

}  // namespace stems
