// GraceHashJoinOp [7] and HybridHashJoinOp [6] — the blocking hash joins
// the paper's §3.1 shows the eddy can simulate (and hybridize with SHJ) by
// re-routing.
//
// Grace: both inputs are hash-partitioned to "disk" as they arrive; when
// both are complete, partitions are processed one at a time (build left,
// probe right), paying a per-tuple partition I/O cost. No results appear
// before inputs finish — the opposite extreme from the SHJ on the online
// metric, with better locality.
//
// Hybrid-hash: partition 0 stays memory-resident and joins in a pipelined
// fashion (early results); the remaining partitions behave like Grace.
#pragma once

#include <vector>

#include "baseline/shj_op.h"

namespace stems {

struct GraceHashJoinOpOptions {
  size_t num_partitions = 8;
  /// Number of partitions processed in memory, pipelined (0 = pure Grace;
  /// >= 1 = hybrid hash join).
  size_t memory_resident_partitions = 0;
  SimTime partition_write_time = Micros(4);  ///< per input tuple
  SimTime partition_read_time = Micros(4);   ///< per tuple at join time
  SimTime probe_time = Micros(2);
};

class GraceHashJoinOp : public JoinOperator {
 public:
  GraceHashJoinOp(QueryContext* ctx, std::string name, uint64_t left_mask,
                  uint64_t right_mask, int key_predicate_id,
                  GraceHashJoinOpOptions options = {});

  size_t num_partitions() const { return options_.num_partitions; }

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void ProcessData(TuplePtr tuple, int side) override;
  void Finalize() override;

 private:
  struct Partition {
    std::vector<TuplePtr> inputs[2];
  };

  size_t PartitionOf(const Value& key) const;
  const Value* KeyOf(const Tuple& tuple, int side) const;
  void JoinPair(const TuplePtr& left, const TuplePtr& right);
  /// Schedules partition `p` for processing and chains the next one.
  void ProcessPartition(size_t p);

  GraceHashJoinOpOptions options_;
  ColumnRef keys_[2];
  std::vector<Partition> partitions_;
  /// In-memory hash for resident partitions (hybrid mode).
  std::unordered_map<Value, std::vector<TuplePtr>, ValueHash>
      resident_hash_[2];
};

}  // namespace stems
