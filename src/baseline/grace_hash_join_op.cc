#include "baseline/grace_hash_join_op.h"

#include <cassert>

namespace stems {

GraceHashJoinOp::GraceHashJoinOp(QueryContext* ctx, std::string name,
                                 uint64_t left_mask, uint64_t right_mask,
                                 int key_predicate_id,
                                 GraceHashJoinOpOptions options)
    : JoinOperator(ctx, std::move(name), {left_mask, right_mask}),
      options_(options),
      partitions_(options.num_partitions) {
  const Predicate& p = ctx->query->predicates()[key_predicate_id];
  assert(p.is_join() && p.op() == CompareOp::kEq);
  const ColumnRef& a = p.lhs();
  const ColumnRef& b = p.rhs();
  if (left_mask & (1ULL << a.table_slot)) {
    keys_[0] = a;
    keys_[1] = b;
  } else {
    keys_[0] = b;
    keys_[1] = a;
  }
}

const Value* GraceHashJoinOp::KeyOf(const Tuple& tuple, int side) const {
  return tuple.ValueAt(keys_[side].table_slot, keys_[side].column);
}

size_t GraceHashJoinOp::PartitionOf(const Value& key) const {
  return key.Hash() % options_.num_partitions;
}

SimTime GraceHashJoinOp::ServiceTime(const Tuple& tuple) const {
  if (tuple.IsEot()) return options_.probe_time;
  return options_.partition_write_time;
}

void GraceHashJoinOp::JoinPair(const TuplePtr& left, const TuplePtr& right) {
  TuplePtr result = left;
  for (int s = 0; s < right->num_slots(); ++s) {
    if (!right->Spans(s)) continue;
    if (result->Spans(s)) return;
    result = result->ConcatWith(s, right->component(s).row, 0);
  }
  for (size_t pid = 0; pid < ctx_->query->num_predicates(); ++pid) {
    if (left->PassedPredicate(static_cast<int>(pid)) ||
        right->PassedPredicate(static_cast<int>(pid))) {
      result->MarkPredicatePassed(static_cast<int>(pid));
    }
  }
  if (ApplyEvaluablePredicates(result.get())) Emit(std::move(result));
}

void GraceHashJoinOp::ProcessData(TuplePtr tuple, int side) {
  const Value* key = KeyOf(*tuple, side);
  if (key == nullptr) return;
  const size_t p = PartitionOf(*key);
  if (p < options_.memory_resident_partitions) {
    // Hybrid-hash fast path: pipelined symmetric join in memory.
    resident_hash_[side][*key].push_back(tuple);
    auto it = resident_hash_[1 - side].find(*key);
    if (it != resident_hash_[1 - side].end()) {
      for (const TuplePtr& match : it->second) {
        side == 0 ? JoinPair(tuple, match) : JoinPair(match, tuple);
      }
    }
    return;
  }
  partitions_[p].inputs[side].push_back(std::move(tuple));
}

void GraceHashJoinOp::Finalize() {
  // Both inputs complete: process spilled partitions sequentially, charging
  // read I/O per stored tuple. Scheduled as chained events so results carry
  // realistic virtual timestamps.
  ProcessPartition(options_.memory_resident_partitions);
}

void GraceHashJoinOp::ProcessPartition(size_t p) {
  if (p >= options_.num_partitions) return;
  Partition& part = partitions_[p];
  const SimTime cost =
      options_.partition_read_time *
          static_cast<SimTime>(part.inputs[0].size() + part.inputs[1].size()) +
      options_.probe_time * static_cast<SimTime>(part.inputs[1].size() + 1);
  sim()->Schedule(cost, [this, p] {
    Partition& part = partitions_[p];
    std::unordered_map<Value, std::vector<TuplePtr>, ValueHash> hash;
    for (const TuplePtr& t : part.inputs[0]) {
      const Value* key = KeyOf(*t, 0);
      hash[*key].push_back(t);
    }
    for (const TuplePtr& t : part.inputs[1]) {
      const Value* key = KeyOf(*t, 1);
      auto it = hash.find(*key);
      if (it == hash.end()) continue;
      for (const TuplePtr& match : it->second) JoinPair(match, t);
    }
    part.inputs[0].clear();
    part.inputs[1].clear();
    ProcessPartition(p + 1);
  });
}

}  // namespace stems
