#include "baseline/index_join_op.h"

#include <cassert>

namespace stems {

IndexJoinOp::IndexJoinOp(QueryContext* ctx, std::string name,
                         uint64_t probe_mask, int table_slot,
                         std::vector<int> bind_columns,
                         const StoredTable* store, IndexJoinOpOptions options)
    : JoinOperator(ctx, std::move(name), {probe_mask}),
      table_slot_(table_slot),
      bind_columns_(std::move(bind_columns)),
      store_(store),
      options_(std::move(options)),
      rng_(options_.seed) {
  if (options_.lookup_latency == nullptr) {
    options_.lookup_latency = std::make_shared<FixedLatency>(Millis(100));
  }
}

std::vector<Value> IndexJoinOp::BindValuesFor(const Tuple& tuple) const {
  std::vector<Value> values;
  for (int bind_col : bind_columns_) {
    const Value* found = nullptr;
    for (const auto& p : ctx_->query->predicates()) {
      auto col = p.EquiJoinColumnFor(table_slot_);
      if (!col.has_value() || *col != bind_col) continue;
      auto peer = p.EquiJoinPeerOf(table_slot_);
      if (!peer.has_value() || peer->table_slot == table_slot_) continue;
      const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
      if (v != nullptr) {
        found = v;
        break;
      }
    }
    assert(found != nullptr && "probe tuple cannot bind the index join");
    values.push_back(*found);
  }
  return values;
}

SimTime IndexJoinOp::ServiceTime(const Tuple& tuple) const {
  if (tuple.IsEot()) return options_.cache_hit_time;
  // This is the crux of §4.2: the module's single server is occupied for
  // the full remote latency on a miss, so every queued probe — including
  // ones that would be cache hits — waits behind it.
  if (cache_.count(BindValuesFor(tuple)) > 0) return options_.cache_hit_time;
  return options_.lookup_latency->Sample(sim()->now(), rng_);
}

void IndexJoinOp::ProcessData(TuplePtr tuple, int /*side*/) {
  std::vector<Value> key = BindValuesFor(*tuple);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    ++index_lookups_;
    ctx_->metrics.Count(name() + ".probes", sim()->now());
    it = cache_.emplace(key, store_->Lookup(bind_columns_, key)).first;
  } else {
    ++cache_hits_;
  }
  for (const RowRef& row : it->second) {
    TuplePtr result = tuple->ConcatWith(table_slot_, row, 0);
    if (ApplyEvaluablePredicates(result.get())) Emit(std::move(result));
  }
}

}  // namespace stems
