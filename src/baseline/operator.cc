#include "baseline/operator.h"

#include <cassert>

#include "am/scan_am.h"

namespace stems {

JoinOperator::JoinOperator(QueryContext* ctx, std::string name,
                           std::vector<uint64_t> side_masks)
    : Module(ctx->sim, std::move(name)),
      ctx_(ctx),
      side_masks_(std::move(side_masks)),
      side_complete_(side_masks_.size(), false) {}

int JoinOperator::SideOf(const Tuple& tuple) const {
  for (size_t i = 0; i < side_masks_.size(); ++i) {
    const uint64_t span = tuple.spanned_mask();
    if (span != 0 && (span & ~side_masks_[i]) == 0) return static_cast<int>(i);
  }
  return -1;
}

bool JoinOperator::AllSidesComplete() const {
  for (bool c : side_complete_) {
    if (!c) return false;
  }
  return true;
}

void JoinOperator::Process(TuplePtr tuple) {
  const int side = SideOf(*tuple);
  assert(side >= 0 && "tuple does not belong to any input side");
  if (tuple->IsEot()) {
    if (!side_complete_[side]) {
      side_complete_[side] = true;
      if (AllSidesComplete()) {
        Finalize();
        Emit(std::move(tuple));  // propagate completion downstream
      }
    }
    return;
  }
  ProcessData(std::move(tuple), side);
}

bool JoinOperator::ApplyEvaluablePredicates(Tuple* tuple) const {
  for (const auto& p : ctx_->query->predicates()) {
    if (tuple->PassedPredicate(p.id())) continue;
    if (!p.CanEvaluate(tuple->spanned_mask())) continue;
    if (!p.Evaluate(*tuple)) return false;
    tuple->MarkPredicatePassed(p.id());
  }
  return true;
}

void CollectorSink::Process(TuplePtr tuple) {
  if (tuple->IsEot() || tuple->is_seed()) return;
  ctx_->metrics.Count("results", sim()->now());
  results_.push_back(std::move(tuple));
}

StaticPlan::StaticPlan(const QuerySpec& query, Simulation* sim) {
  ctx_.query = &query;
  ctx_.sim = sim;
  sink_ = AddModule(std::make_unique<CollectorSink>(&ctx_));
}

void StaticPlan::Connect(Module* from, Module* to) {
  from->SetSink([to](TuplePtr t, Module*) { to->Accept(std::move(t)); });
}

void StaticPlan::ConnectToSink(Module* from) { Connect(from, sink_); }

void StaticPlan::Start() {
  assert(!started_);
  started_ = true;
  const int num_slots = static_cast<int>(ctx_.query->num_slots());
  for (const auto& m : modules_) {
    if (m->kind() == ModuleKind::kScanAm) {
      m->Accept(Tuple::MakeSeed(num_slots));
    }
  }
}

void StaticPlan::Run() {
  if (!started_) Start();
  ctx_.sim->Run();
}

}  // namespace stems
