#include "baseline/sort_merge_join_op.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace stems {

SortMergeJoinOp::SortMergeJoinOp(QueryContext* ctx, std::string name,
                                 uint64_t left_mask, uint64_t right_mask,
                                 int key_predicate_id,
                                 SortMergeJoinOpOptions options)
    : JoinOperator(ctx, std::move(name), {left_mask, right_mask}),
      options_(options) {
  const Predicate& p = ctx->query->predicates()[key_predicate_id];
  assert(p.is_join() && p.op() == CompareOp::kEq);
  const ColumnRef& a = p.lhs();
  const ColumnRef& b = p.rhs();
  if (left_mask & (1ULL << a.table_slot)) {
    keys_[0] = a;
    keys_[1] = b;
  } else {
    keys_[0] = b;
    keys_[1] = a;
  }
}

const Value* SortMergeJoinOp::KeyOf(const Tuple& tuple, int side) const {
  return tuple.ValueAt(keys_[side].table_slot, keys_[side].column);
}

SimTime SortMergeJoinOp::ServiceTime(const Tuple&) const {
  return options_.buffer_time;
}

void SortMergeJoinOp::ProcessData(TuplePtr tuple, int side) {
  if (KeyOf(*tuple, side) == nullptr) return;
  runs_[side].push_back(std::move(tuple));
}

void SortMergeJoinOp::JoinPair(const TuplePtr& left, const TuplePtr& right) {
  TuplePtr result = left;
  for (int s = 0; s < right->num_slots(); ++s) {
    if (!right->Spans(s)) continue;
    if (result->Spans(s)) return;
    result = result->ConcatWith(s, right->component(s).row, 0);
  }
  for (size_t pid = 0; pid < ctx_->query->num_predicates(); ++pid) {
    if (left->PassedPredicate(static_cast<int>(pid)) ||
        right->PassedPredicate(static_cast<int>(pid))) {
      result->MarkPredicatePassed(static_cast<int>(pid));
    }
  }
  if (ApplyEvaluablePredicates(result.get())) Emit(std::move(result));
}

void SortMergeJoinOp::Finalize() {
  // Charge the sort: c * (nL log nL + nR log nR) comparisons.
  auto sort_cost = [this](size_t n) -> SimTime {
    if (n < 2) return options_.compare_time;
    return options_.compare_time *
           static_cast<SimTime>(
               static_cast<double>(n) * std::log2(static_cast<double>(n)));
  };
  const SimTime total_sort = sort_cost(runs_[0].size()) +
                             sort_cost(runs_[1].size());
  sim()->Schedule(total_sort, [this] {
    for (int side = 0; side < 2; ++side) {
      std::sort(runs_[side].begin(), runs_[side].end(),
                [this, side](const TuplePtr& a, const TuplePtr& b) {
                  return *KeyOf(*a, side) < *KeyOf(*b, side);
                });
    }
    // Merge; each key group emits its cross pairs.
    size_t i = 0, j = 0;
    SimTime at = 0;
    while (i < runs_[0].size() && j < runs_[1].size()) {
      at += options_.merge_step_time;
      const Value& ki = *KeyOf(*runs_[0][i], 0);
      const Value& kj = *KeyOf(*runs_[1][j], 1);
      if (ki < kj) {
        ++i;
        continue;
      }
      if (kj < ki) {
        ++j;
        continue;
      }
      size_t i_end = i;
      while (i_end < runs_[0].size() && *KeyOf(*runs_[0][i_end], 0) == ki) {
        ++i_end;
      }
      size_t j_end = j;
      while (j_end < runs_[1].size() && *KeyOf(*runs_[1][j_end], 1) == ki) {
        ++j_end;
      }
      sim()->Schedule(at, [this, i, i_end, j, j_end] {
        for (size_t a = i; a < i_end; ++a) {
          for (size_t b = j; b < j_end; ++b) {
            JoinPair(runs_[0][a], runs_[1][b]);
          }
        }
      });
      i = i_end;
      j = j_end;
    }
  });
}

}  // namespace stems
