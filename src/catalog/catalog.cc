#include "catalog/catalog.h"

namespace stems {

bool TableDef::HasScanAm() const {
  for (const auto& am : access_methods) {
    if (am.kind == AccessMethodKind::kScan) return true;
  }
  return false;
}

bool TableDef::HasIndexAm() const {
  for (const auto& am : access_methods) {
    if (am.kind == AccessMethodKind::kIndex) return true;
  }
  return false;
}

Status Catalog::AddTable(TableDef def) {
  for (const auto& t : tables_) {
    if (t.name == def.name) {
      return Status::AlreadyExists("table '" + def.name + "' already exists");
    }
  }
  if (def.name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  for (const auto& am : def.access_methods) {
    if (am.kind == AccessMethodKind::kIndex && am.bind_columns.empty()) {
      return Status::InvalidArgument("index AM '" + am.name +
                                     "' must have bind columns");
    }
    for (int c : am.bind_columns) {
      if (c < 0 || static_cast<size_t>(c) >= def.schema.num_columns()) {
        return Status::OutOfRange("bind column out of range in AM '" +
                                  am.name + "'");
      }
    }
  }
  tables_.push_back(std::move(def));
  return Status::OK();
}

Result<const TableDef*> Catalog::GetTable(const std::string& name) const {
  for (const auto& t : tables_) {
    if (t.name == name) return &t;
  }
  return Status::NotFound("table '" + name + "' not found");
}

}  // namespace stems
