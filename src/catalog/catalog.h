// Catalog: table definitions and the access methods their sources support.
//
// In Telegraph FFF (paper §1.2) a "table" may be served by several sources,
// each exposing scans and/or indexes with particular bind-field sets. The
// catalog records these capabilities; the planner (query/planner.h) turns
// them into Access Modules.
#pragma once

#include <deque>
#include <string>
#include <vector>

#include "common/status.h"
#include "types/schema.h"

namespace stems {

enum class AccessMethodKind { kScan, kIndex };

/// One access method exposed by a data source for a table.
///
/// An index access method answers probes that bind exactly `bind_columns`
/// (equality bindings, as in the paper's common case); a scan access method
/// accepts only the seed tuple and streams the whole table.
struct AccessMethodSpec {
  std::string name;  ///< unique within the table, e.g. "T.scan", "S.idx_x"
  AccessMethodKind kind = AccessMethodKind::kScan;
  std::vector<int> bind_columns;  ///< column ordinals; empty for scans
};

/// A base table: schema plus the access methods available for it.
struct TableDef {
  std::string name;
  Schema schema;
  std::vector<AccessMethodSpec> access_methods;

  bool HasScanAm() const;
  bool HasIndexAm() const;
};

/// Name-keyed collection of table definitions.
///
/// TableDefs are stored in a deque so the `const TableDef*` pointers handed
/// out by GetTable() (and resolved into QuerySpec slots) stay valid as more
/// tables are registered — queries built early must survive later DDL.
class Catalog {
 public:
  /// Registers a table. Fails if a table with the same name exists.
  Status AddTable(TableDef def);

  /// Looks up a table by name. The pointer is stable for the catalog's
  /// lifetime.
  Result<const TableDef*> GetTable(const std::string& name) const;

  const std::deque<TableDef>& tables() const { return tables_; }

 private:
  std::deque<TableDef> tables_;
};

}  // namespace stems
