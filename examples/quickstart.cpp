// Quickstart: run a three-table join through the eddy + SteMs engine.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The flow every stems program follows:
//   1. describe tables + access methods in a Catalog, data in a TableStore;
//   2. build a QuerySpec with QueryBuilder;
//   3. PlanQuery() — instantiates AMs, SMs and SteMs around an Eddy
//      (paper §2.2: no optimizer, no a-priori plan);
//   4. pick a RoutingPolicy and RunToCompletion().
#include <cstdio>

#include "eddy/policies/nary_shj_policy.h"
#include "query/planner.h"

using namespace stems;

int main() {
  // 1. Catalog: three tables, each with a scan access method.
  Catalog catalog;
  TableStore store;

  Schema users({{"id", ValueType::kInt64}, {"age", ValueType::kInt64}});
  Schema orders({{"user_id", ValueType::kInt64}, {"item_id", ValueType::kInt64}});
  Schema items({{"id", ValueType::kInt64}, {"price", ValueType::kInt64}});

  catalog.AddTable(
      TableDef{"users", users, {{"users.scan", AccessMethodKind::kScan, {}}}});
  catalog.AddTable(TableDef{
      "orders", orders, {{"orders.scan", AccessMethodKind::kScan, {}}}});
  catalog.AddTable(
      TableDef{"items", items, {{"items.scan", AccessMethodKind::kScan, {}}}});

  store.AddTable("users", users,
                 {MakeRow({Value::Int64(1), Value::Int64(34)}),
                  MakeRow({Value::Int64(2), Value::Int64(57)}),
                  MakeRow({Value::Int64(3), Value::Int64(25)})});
  store.AddTable("orders", orders,
                 {MakeRow({Value::Int64(1), Value::Int64(10)}),
                  MakeRow({Value::Int64(1), Value::Int64(11)}),
                  MakeRow({Value::Int64(2), Value::Int64(10)}),
                  MakeRow({Value::Int64(3), Value::Int64(12)})});
  store.AddTable("items", items,
                 {MakeRow({Value::Int64(10), Value::Int64(999)}),
                  MakeRow({Value::Int64(11), Value::Int64(25)}),
                  MakeRow({Value::Int64(12), Value::Int64(150)})});

  // 2. SELECT * FROM users u, orders o, items i
  //    WHERE u.id = o.user_id AND o.item_id = i.id AND u.age >= 30
  QueryBuilder qb(catalog);
  qb.AddTable("users", "u").AddTable("orders", "o").AddTable("items", "i");
  qb.AddJoin("u.id", "o.user_id");
  qb.AddJoin("o.item_id", "i.id");
  qb.AddSelection("u.age", CompareOp::kGe, Value::Int64(30));
  QuerySpec query = qb.Build().ValueOrDie();
  std::printf("query: %s\n", query.ToString().c_str());

  // 3. Plan: one SteM per table, one AM per access method, one SM per
  //    selection, an eddy in the middle.
  Simulation sim;
  auto eddy = PlanQuery(query, store, &sim).ValueOrDie();

  // 4. Route with the n-ary symmetric hash join policy (paper §2.3).
  eddy->SetPolicy(std::make_unique<NaryShjPolicy>());
  eddy->RunToCompletion();

  std::printf("results (%zu):\n", eddy->results().size());
  for (const auto& t : eddy->results()) {
    std::printf("  %s\n", t->ToString().c_str());
  }
  std::printf("routing steps: %llu, constraint violations: %zu\n",
              static_cast<unsigned long long>(eddy->tuples_routed()),
              eddy->violations().size());
  return eddy->violations().empty() ? 0 : 1;
}
