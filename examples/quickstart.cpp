// Quickstart: run a three-table join through the eddy + SteMs engine.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The paper's thesis (§2.2) is that eddies + SteMs obviate query
// optimization: there is no plan to pick, so a query is *submitted as
// intent*, not assembled. Every stems program is three steps:
//   1. describe the data — table schemas, access methods, rows — to an
//      Engine (it owns the catalog, the store, and the clock);
//   2. submit a SQL string with RunOptions naming a routing policy
//      ("nary_shj" here; see PolicyRegistry::Names() for all of them);
//   3. stream schema-aware rows from the handle's pull-based cursor.
//
// (QueryBuilder remains the programmatic escape hatch for generated
// queries; see docs/api.md. The SQL dialect is specified in docs/sql.md.)
//
// This example doubles as a smoke test: the join cardinality is asserted,
// so a wrong result set fails the binary, not just the reader's eyes.
#include <cstdio>
#include <cstdlib>

#include "engine/engine.h"

using namespace stems;

int main() {
  // 1. Describe the data: three tables, each with a scan access method.
  Engine engine;

  Schema users({{"id", ValueType::kInt64}, {"age", ValueType::kInt64}});
  Schema orders({{"user_id", ValueType::kInt64}, {"item_id", ValueType::kInt64}});
  Schema items({{"id", ValueType::kInt64}, {"price", ValueType::kInt64}});

  engine.AddTable(
      TableDef{"users", users, {{"users.scan", AccessMethodKind::kScan, {}}}},
      {MakeRow({Value::Int64(1), Value::Int64(34)}),
       MakeRow({Value::Int64(2), Value::Int64(57)}),
       MakeRow({Value::Int64(3), Value::Int64(25)})}).IgnoreError();
  engine.AddTable(
      TableDef{"orders", orders, {{"orders.scan", AccessMethodKind::kScan, {}}}},
      {MakeRow({Value::Int64(1), Value::Int64(10)}),
       MakeRow({Value::Int64(1), Value::Int64(11)}),
       MakeRow({Value::Int64(2), Value::Int64(10)}),
       MakeRow({Value::Int64(3), Value::Int64(12)})}).IgnoreError();
  engine.AddTable(
      TableDef{"items", items, {{"items.scan", AccessMethodKind::kScan, {}}}},
      {MakeRow({Value::Int64(10), Value::Int64(999)}),
       MakeRow({Value::Int64(11), Value::Int64(25)}),
       MakeRow({Value::Int64(12), Value::Int64(150)})}).IgnoreError();

  // 2. Submit the query as SQL: explicit projection, conjunctive WHERE.
  const char* sql =
      "SELECT u.id, i.price FROM users u, orders o, items i "
      "WHERE u.id = o.user_id AND o.item_id = i.id AND u.age >= 30";
  std::printf("query: %s\n", sql);

  QueryHandle handle = engine.Query(sql).ValueOrDie();

  // 3. Stream: the cursor pulls schema-aware rows out of the running eddy,
  //    advancing the simulation only as far as each NextRow() needs.
  //    Columns are addressed by label — no raw tuple-slot indexing.
  size_t count = 0;
  int64_t total_price = 0;
  std::printf("results:\n");
  ResultCursor cursor = handle.cursor();
  std::printf("output schema: %s\n", cursor.schema().ToString().c_str());
  while (auto row = cursor.NextRow()) {
    std::printf("  %s\n", row->ToString().c_str());
    total_price += row->Get("i.price").AsInt64();
    ++count;
  }

  const QueryStats stats = handle.Stats();
  std::printf("routing steps: %llu, constraint violations: %zu\n",
              static_cast<unsigned long long>(stats.tuples_routed),
              stats.constraint_violations);

  // Smoke check: users 1 (orders 10, 11) and 2 (order 10) pass age >= 30,
  // and every ordered item exists — exactly 3 join results, and the
  // projected prices sum to 999 + 25 + 999.
  if (count != 3) {
    std::fprintf(stderr, "FAIL: expected 3 results, got %zu\n", count);
    return EXIT_FAILURE;
  }
  if (total_price != 999 + 25 + 999) {
    std::fprintf(stderr, "FAIL: projected price sum %lld\n",
                 static_cast<long long>(total_price));
    return EXIT_FAILURE;
  }
  if (stats.constraint_violations != 0) {
    std::fprintf(stderr, "FAIL: %zu constraint violations\n",
                 stats.constraint_violations);
    return EXIT_FAILURE;
  }
  std::printf("OK: cardinality 3, price sum %lld, no violations\n",
              static_cast<long long>(total_price));
  return EXIT_SUCCESS;
}
