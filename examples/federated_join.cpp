// Federated Facts & Figures scenario (paper §1.2): join a local table with
// two autonomously-maintained "web sources" that mirror the same data —
// one fast, one slow and flaky — plus an asynchronous index form interface.
//
// Demonstrates:
//   * competitive access methods running simultaneously (paper §3.2);
//   * the shared SteM absorbing duplicate rows from the mirrors;
//   * index probe coalescing (the rendezvous-buffer/cache roles, §3.3);
//   * adaptation when a source stalls mid-query.
#include <cstdio>

#include "eddy/policies/benefit_cost_policy.h"
#include "query/planner.h"
#include "storage/generators.h"

using namespace stems;

int main() {
  Catalog catalog;
  TableStore store;

  // Local CRM accounts table: scanned locally, fast.
  Schema accounts({{"id", ValueType::kInt64}, {"region", ValueType::kInt64}});
  catalog.AddTable(TableDef{
      "accounts", accounts,
      {{"accounts.scan", AccessMethodKind::kScan, {}}}});
  std::vector<ColumnGenSpec> acc_cols{
      {"id", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0},
      {"region", ColumnGenSpec::Kind::kUniform, 0, 4, 0, 0}};
  store.AddTable("accounts", accounts, GenerateRows(acc_cols, 400, 1));

  // "creditscores": served by two mirror websites (scans at different
  // speeds; one stalls) AND a keyed lookup form (async index on id).
  Schema scores({{"id", ValueType::kInt64}, {"score", ValueType::kInt64}});
  catalog.AddTable(TableDef{"creditscores",
                            scores,
                            {{"mirror1.scan", AccessMethodKind::kScan, {}},
                             {"mirror2.scan", AccessMethodKind::kScan, {}},
                             {"lookup.form", AccessMethodKind::kIndex, {0}}}});
  std::vector<ColumnGenSpec> score_cols{
      {"id", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0},
      {"score", ColumnGenSpec::Kind::kUniform, 300, 850, 0, 0}};
  store.AddTable("creditscores", scores, GenerateRows(score_cols, 400, 2));

  QueryBuilder qb(catalog);
  qb.AddTable("accounts", "a").AddTable("creditscores", "c");
  qb.AddJoin("a.id", "c.id");
  qb.AddSelection("c.score", CompareOp::kGe, Value::Int64(700));
  QuerySpec query = qb.Build().ValueOrDie();
  std::printf("query: %s\n", query.ToString().c_str());

  Simulation sim;
  ExecutionConfig config;
  config.scan_overrides["accounts.scan"].period = Millis(5);
  // Mirror 1: brisk but goes dark between 2 s and 12 s.
  config.scan_overrides["mirror1.scan"].period = Millis(12);
  config.scan_overrides["mirror1.scan"].stall_windows = {
      {Seconds(2), Seconds(12)}};
  // Mirror 2: slow and steady.
  config.scan_overrides["mirror2.scan"].period = Millis(40);
  // Lookup form: 300 ms per request, up to 4 outstanding.
  config.index_overrides["lookup.form"].latency =
      std::make_shared<FixedLatency>(Millis(300));
  config.index_overrides["lookup.form"].concurrency = 4;
  // Let the policy choose per-probe between waiting for the mirrors and
  // paying for a form lookup.
  StemOptions c_stem;
  c_stem.bounce_mode = ProbeBounceMode::kAlways;
  config.stem_overrides["creditscores"] = c_stem;

  auto eddy = PlanQuery(query, store, &sim, config).ValueOrDie();
  eddy->SetPolicy(std::make_unique<BenefitCostPolicy>());
  eddy->RunToCompletion();

  const auto& metrics = eddy->ctx()->metrics;
  std::printf("\nresults: %zu high-score accounts\n", eddy->results().size());
  std::printf("virtual completion time: %.2f s\n", ToSeconds(sim.now()));
  std::printf("results after 1s/5s/15s: %lld / %lld / %lld\n",
              static_cast<long long>(metrics.Series("results").ValueAt(Seconds(1))),
              static_cast<long long>(metrics.Series("results").ValueAt(Seconds(5))),
              static_cast<long long>(metrics.Series("results").ValueAt(Seconds(15))));
  std::printf("form lookups issued: %lld (coalesced away: %lld)\n",
              static_cast<long long>(metrics.Series("lookup.form.probes").total()),
              static_cast<long long>(
                  metrics.Series("lookup.form.coalesced").total()));
  const Stem* stem = eddy->StemForTable("creditscores");
  std::printf("duplicate rows absorbed by SteM(creditscores): %llu "
              "(mirror overlap — no duplicate results)\n",
              static_cast<unsigned long long>(stem->duplicates_absorbed()));
  std::printf("constraint violations: %zu\n", eddy->violations().size());
  return eddy->violations().empty() ? 0 : 1;
}
