// Federated Facts & Figures scenario (paper §1.2): join a local table with
// two autonomously-maintained "web sources" that mirror the same data —
// one fast, one slow and flaky — plus an asynchronous index form interface.
//
// Demonstrates:
//   * competitive access methods running simultaneously (paper §3.2);
//   * the shared SteM absorbing duplicate rows from the mirrors;
//   * index probe coalescing (the rendezvous-buffer/cache roles, §3.3);
//   * adaptation when a source stalls mid-query.
//
// Uses the Engine façade with the RunOptions::Paper() preset (benefit/cost
// routing, §4.1) — no concrete policy type appears anywhere. The query is
// a *prepared statement* with a named parameter: a serving system reuses
// the parsed-and-bound form and only rebinds $min_score per request.
#include <cstdio>

#include "engine/engine.h"
#include "storage/generators.h"

using namespace stems;

int main() {
  Engine engine;

  // Local CRM accounts table: scanned locally, fast.
  Schema accounts({{"id", ValueType::kInt64}, {"region", ValueType::kInt64}});
  std::vector<ColumnGenSpec> acc_cols{
      {"id", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0},
      {"region", ColumnGenSpec::Kind::kUniform, 0, 4, 0, 0}};
  // Fresh engine + literal schema: registration cannot fail here.
  engine.AddTable(TableDef{"accounts", accounts,
                           {{"accounts.scan", AccessMethodKind::kScan, {}}}},
                  GenerateRows(acc_cols, 400, 1)).IgnoreError();

  // "creditscores": served by two mirror websites (scans at different
  // speeds; one stalls) AND a keyed lookup form (async index on id).
  Schema scores({{"id", ValueType::kInt64}, {"score", ValueType::kInt64}});
  std::vector<ColumnGenSpec> score_cols{
      {"id", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0},
      {"score", ColumnGenSpec::Kind::kUniform, 300, 850, 0, 0}};
  engine.AddTable(TableDef{"creditscores",
                           scores,
                           {{"mirror1.scan", AccessMethodKind::kScan, {}},
                            {"mirror2.scan", AccessMethodKind::kScan, {}},
                            {"lookup.form", AccessMethodKind::kIndex, {0}}}},
                  GenerateRows(score_cols, 400, 2)).IgnoreError();

  // Parse + resolve once; the score threshold stays a parameter.
  PreparedQuery prepared =
      engine
          .Prepare("SELECT * FROM accounts a, creditscores c "
                   "WHERE a.id = c.id AND c.score >= $min_score")
          .ValueOrDie();
  std::printf("prepared: %s\n", prepared.spec().ToString().c_str());

  RunOptions options = RunOptions::Paper();
  options.exec.scan_overrides["accounts.scan"].period = Millis(5);
  // Mirror 1: brisk but goes dark between 2 s and 12 s.
  options.exec.scan_overrides["mirror1.scan"].period = Millis(12);
  options.exec.scan_overrides["mirror1.scan"].stall_windows = {
      {Seconds(2), Seconds(12)}};
  // Mirror 2: slow and steady.
  options.exec.scan_overrides["mirror2.scan"].period = Millis(40);
  // Lookup form: 300 ms per request, up to 4 outstanding.
  options.exec.index_overrides["lookup.form"].latency =
      std::make_shared<FixedLatency>(Millis(300));
  options.exec.index_overrides["lookup.form"].concurrency = 4;
  // Let the policy choose per-probe between waiting for the mirrors and
  // paying for a form lookup.
  StemOptions c_stem;
  c_stem.bounce_mode = ProbeBounceMode::kAlways;
  options.exec.stem_overrides["creditscores"] = c_stem;

  QueryHandle handle =
      prepared
          .Bind(sql::SqlParams().Set("min_score", Value::Int64(700)))
          .Submit(options)
          .ValueOrDie();
  const size_t num_results = handle.cursor().Drain().size();

  const auto& metrics = handle.metrics();
  std::printf("\nresults: %zu high-score accounts\n", num_results);
  std::printf("virtual completion time: %.2f s\n",
              ToSeconds(handle.Stats().completed_at));
  std::printf("results after 1s/5s/15s: %lld / %lld / %lld\n",
              static_cast<long long>(metrics.Series("results").ValueAt(Seconds(1))),
              static_cast<long long>(metrics.Series("results").ValueAt(Seconds(5))),
              static_cast<long long>(metrics.Series("results").ValueAt(Seconds(15))));
  std::printf("form lookups issued: %lld (coalesced away: %lld)\n",
              static_cast<long long>(metrics.Series("lookup.form.probes").total()),
              static_cast<long long>(
                  metrics.Series("lookup.form.coalesced").total()));
  const Stem* stem = handle.eddy()->StemForTable("creditscores");
  std::printf("duplicate rows absorbed by SteM(creditscores): %llu "
              "(mirror overlap — no duplicate results)\n",
              static_cast<unsigned long long>(stem->duplicates_absorbed()));
  const size_t violations = handle.Stats().constraint_violations;
  std::printf("constraint violations: %zu\n", violations);
  return violations == 0 ? 0 : 1;
}
