// Interactive online query processing (paper §1.2, §4.1): the user watches
// partial results stream in and marks a region of interest; the eddy
// expedites matching tuples through an index AM while everyone else rides
// the slow scan.
//
// This is the FFF story: "as the user sees these partial results, their
// interests in different parts of the result may change".
#include <cstdio>

#include "engine/engine.h"
#include "storage/generators.h"

using namespace stems;

namespace {

void RunOnce(bool prioritize, int64_t hot_region) {
  Engine engine;
  // Fresh engine + literal schema: registration cannot fail here.
  engine.AddTable(
      TableDef{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}},
      GenerateTableR(600, 250, 12)).IgnoreError();
  engine.AddTable(TableDef{"T",
                           SchemaT(),
                           {{"T.scan", AccessMethodKind::kScan, {}},
                            {"T.idx", AccessMethodKind::kIndex, {0}}}},
                  GenerateTableT(250, 13)).IgnoreError();

  RunOptions options;  // nary_shj: deliberately not index-hungry
  options.exec.scan_overrides["R.scan"].period = Millis(8);
  options.exec.scan_overrides["T.scan"].period = Millis(150);  // slow: ~37 s
  options.exec.index_defaults.latency =
      std::make_shared<FixedLatency>(Millis(250));
  if (prioritize) {
    options.exec.scan_overrides["R.scan"].prioritizer =
        [hot_region](const Row& r) {
          return r.value(1).AsInt64() < hot_region;
        };
    StemOptions t_stem;
    t_stem.bounce_mode = ProbeBounceMode::kPrioritized;
    options.exec.stem_overrides["T"] = t_stem;
  }
  options.exec.eddy.result_priority_classifier = [hot_region](const Tuple& t) {
    const Value* a = t.ValueAt(0, 1);
    return a != nullptr && a->AsInt64() < hot_region;
  };

  QueryHandle handle =
      engine.Query("SELECT * FROM R, T WHERE R.a = T.key", options)
          .ValueOrDie();
  handle.Wait();

  const auto& prio = handle.metrics().Series("results.prioritized");
  const auto& all = handle.metrics().Series("results");
  std::printf("  %-22s hot results by 2s/5s/10s: %3lld/%3lld/%3lld  "
              "(of %lld)   all done at %.1fs\n",
              prioritize ? "with priority bounce" : "no priorities",
              static_cast<long long>(prio.ValueAt(Seconds(2))),
              static_cast<long long>(prio.ValueAt(Seconds(5))),
              static_cast<long long>(prio.ValueAt(Seconds(10))),
              static_cast<long long>(prio.total()),
              ToSeconds(all.TimeToReach(all.total())));
}

}  // namespace

int main() {
  std::printf("User explores; at query start they zoom into R.a < 40 "
              "(the 'hot region').\n\n");
  RunOnce(/*prioritize=*/false, /*hot_region=*/40);
  RunOnce(/*prioritize=*/true, /*hot_region=*/40);
  std::printf(
      "\nWith the §4.1 priority bounce, hot-region results arrive within "
      "seconds via the T index\nwhile overall completion stays pinned to "
      "the scan.\n");
  return 0;
}
