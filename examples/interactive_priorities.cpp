// Interactive online query processing (paper §1.2, §4.1): the user watches
// partial results stream in and marks a region of interest; the eddy
// expedites matching tuples through an index AM while everyone else rides
// the slow scan.
//
// This is the FFF story: "as the user sees these partial results, their
// interests in different parts of the result may change".
#include <cstdio>

#include "eddy/policies/nary_shj_policy.h"
#include "query/planner.h"
#include "storage/generators.h"

using namespace stems;

namespace {

void RunOnce(bool prioritize, int64_t hot_region) {
  Catalog catalog;
  TableStore store;
  catalog.AddTable(TableDef{
      "R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}});
  catalog.AddTable(TableDef{"T",
                            SchemaT(),
                            {{"T.scan", AccessMethodKind::kScan, {}},
                             {"T.idx", AccessMethodKind::kIndex, {0}}}});
  store.AddTable("R", SchemaR(), GenerateTableR(600, 250, 12));
  store.AddTable("T", SchemaT(), GenerateTableT(250, 13));

  QueryBuilder qb(catalog);
  qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
  QuerySpec query = qb.Build().ValueOrDie();

  Simulation sim;
  ExecutionConfig config;
  config.scan_overrides["R.scan"].period = Millis(8);
  config.scan_overrides["T.scan"].period = Millis(150);  // slow: ~37 s
  config.index_defaults.latency = std::make_shared<FixedLatency>(Millis(250));
  if (prioritize) {
    config.scan_overrides["R.scan"].prioritizer = [hot_region](const Row& r) {
      return r.value(1).AsInt64() < hot_region;
    };
    StemOptions t_stem;
    t_stem.bounce_mode = ProbeBounceMode::kPrioritized;
    config.stem_overrides["T"] = t_stem;
  }
  config.eddy.result_priority_classifier = [hot_region](const Tuple& t) {
    const Value* a = t.ValueAt(0, 1);
    return a != nullptr && a->AsInt64() < hot_region;
  };

  auto eddy = PlanQuery(query, store, &sim, config).ValueOrDie();
  eddy->SetPolicy(std::make_unique<NaryShjPolicy>());
  eddy->RunToCompletion();

  const auto& prio = eddy->ctx()->metrics.Series("results.prioritized");
  const auto& all = eddy->ctx()->metrics.Series("results");
  std::printf("  %-22s hot results by 2s/5s/10s: %3lld/%3lld/%3lld  "
              "(of %lld)   all done at %.1fs\n",
              prioritize ? "with priority bounce" : "no priorities",
              static_cast<long long>(prio.ValueAt(Seconds(2))),
              static_cast<long long>(prio.ValueAt(Seconds(5))),
              static_cast<long long>(prio.ValueAt(Seconds(10))),
              static_cast<long long>(prio.total()),
              ToSeconds(all.TimeToReach(all.total())));
}

}  // namespace

int main() {
  std::printf("User explores; at query start they zoom into R.a < 40 "
              "(the 'hot region').\n\n");
  RunOnce(/*prioritize=*/false, /*hot_region=*/40);
  RunOnce(/*prioritize=*/true, /*hot_region=*/40);
  std::printf(
      "\nWith the §4.1 priority bounce, hot-region results arrive within "
      "seconds via the T index\nwhile overall completion stays pinned to "
      "the scan.\n");
  return 0;
}
