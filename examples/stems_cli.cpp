// stems_cli: the engine served over its wire protocol (src/server/).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/stems_cli             # serve + query demo
//   ./build/examples/stems_cli --metrics   # + Prometheus exposition
//   ./build/examples/stems_cli --explain   # EXPLAIN ANALYZE profile
//
// Where quickstart runs queries in process, this example is the serving
// topology: a Server multiplexes N client sessions onto one shared Engine
// over a length-prefixed binary protocol on loopback TCP (docs/server.md).
// It starts a server on an ephemeral port, connects a Client as a tenant,
// runs a parameterized prepared statement twice with different bindings,
// shows a positioned SQL error frame, and prints the tenant's rolled-up
// stats. Doubles as a smoke test: cardinalities are asserted, so a wrong
// result set fails the binary.
//
// Subcommands (docs/observability.md):
//   --metrics  after the demo workload, fetch the server's engine-wide
//              metrics over the Metrics wire frame and print the
//              Prometheus plaintext; asserts the admission counters moved.
//   --explain  run EXPLAIN ANALYZE on the demo join in process and print
//              the per-module profile table; asserts the SteM rows appear.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"

using namespace stems;
using server::Client;
using server::Server;
using server::ServerOptions;
using server::TenantConfig;

namespace {

void Check(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAILED: %s\n", what);
    std::exit(1);
  }
}

/// The shared demo catalog: users ⋈ orders, small enough to eyeball.
void Populate(Engine* engine) {
  Schema users({{"id", ValueType::kInt64}, {"age", ValueType::kInt64}});
  Schema orders(
      {{"user_id", ValueType::kInt64}, {"item_id", ValueType::kInt64}});
  engine->AddTable(
      TableDef{"users", users, {{"users.scan", AccessMethodKind::kScan, {}}}},
      {MakeRow({Value::Int64(1), Value::Int64(34)}),
       MakeRow({Value::Int64(2), Value::Int64(57)}),
       MakeRow({Value::Int64(3), Value::Int64(25)})}).IgnoreError();
  engine->AddTable(
      TableDef{"orders", orders,
               {{"orders.scan", AccessMethodKind::kScan, {}}}},
      {MakeRow({Value::Int64(1), Value::Int64(10)}),
       MakeRow({Value::Int64(1), Value::Int64(11)}),
       MakeRow({Value::Int64(2), Value::Int64(10)}),
       MakeRow({Value::Int64(3), Value::Int64(12)})}).IgnoreError();
}

/// --explain: the EXPLAIN ANALYZE surface, in process (the wire path
/// rejects it at Prepare: the statement runs to completion at submit).
int RunExplain() {
  Engine engine;
  Populate(&engine);
  auto table = engine.ExplainAnalyze(
      "EXPLAIN ANALYZE SELECT u.id, o.item_id FROM users u, orders o "
      "WHERE u.id = o.user_id AND u.age >= 30");
  Check(table.ok(), "explain analyze");
  std::printf("%s", table.Value().c_str());
  // The profile must show the join's SteMs and the selection module with
  // an observed selectivity — the columns a routing post-mortem reads.
  Check(table.Value().find("SteM") != std::string::npos,
        "profile lists SteM modules");
  Check(table.Value().find("SM") != std::string::npos,
        "profile lists the selection module");
  Check(table.Value().find("sel(obs)") != std::string::npos,
        "profile carries the observed-selectivity column");
  std::printf("OK\n");
  return 0;
}

int RunServe(bool print_metrics) {
  // 1. Populate the shared engine, exactly as an in-process caller would.
  Engine engine;
  Populate(&engine);

  // 2. Serve it: ephemeral loopback port, one configured tenant whose
  //    SteM state is pooled across queries (the serving configuration).
  ServerOptions options;
  options.run_options.share_stems = true;
  TenantConfig tenant;
  tenant.name = "demo";
  tenant.quota.max_concurrent_queries = 4;
  options.tenants = {tenant};
  Server server(&engine, options);
  Check(server.Start().ok(), "server start");
  std::printf("serving on 127.0.0.1:%u\n", server.port());

  // 3. Connect as the tenant and run a prepared statement twice.
  Client client;
  Check(client.Connect("127.0.0.1", server.port(), "demo").ok(), "connect");
  const char* sql =
      "SELECT u.id, o.item_id FROM users u, orders o "
      "WHERE u.id = o.user_id AND u.age >= $min";
  std::printf("query: %s\n", sql);
  auto prepared = client.Prepare(sql);
  Check(prepared.ok(), "prepare");

  size_t cardinalities[2] = {0, 0};
  const int64_t mins[2] = {30, 50};
  for (int round = 0; round < 2; ++round) {
    auto portal = client.Bind(
        prepared.Value().stmt_id,
        sql::SqlParams().Set("min", Value::Int64(mins[round])));
    Check(portal.ok(), "bind");
    auto submit = client.Submit(portal.Value());
    Check(submit.ok(), "submit");
    std::printf("$min = %lld:\n", static_cast<long long>(mins[round]));
    while (true) {
      auto fetch = client.Fetch(submit.Value().query_id);
      Check(fetch.ok(), "fetch");
      for (const auto& row : fetch.Value().rows) {
        std::printf("  u.id=%s  o.item_id=%s\n", row[0].ToString().c_str(),
                    row[1].ToString().c_str());
        ++cardinalities[round];
      }
      if (fetch.Value().done) break;
    }
  }
  // users 1 and 2 pass age >= 30 (3 orders); only user 2 passes age >= 50.
  Check(cardinalities[0] == 3, "expected 3 rows for $min = 30");
  Check(cardinalities[1] == 1, "expected 1 row for $min = 50");

  // 4. Errors come back as typed frames with a SQL source position.
  auto bad = client.Prepare("SELECT u.id FROM users u WHERE u.age > ");
  Check(!bad.ok(), "bad SQL must fail");
  std::printf("error frame: [%s] %s (at %u:%u)\n",
              StatusCodeName(client.last_error().code),
              client.last_error().message.c_str(),
              client.last_error().sql_line, client.last_error().sql_column);

  // 5. The tenant's rolled-up stats, served over the Stats frame.
  auto stats = client.TenantStats();
  Check(stats.ok(), "stats");
  std::printf("tenant 'demo' rollup:\n");
  for (const auto& [name, value] : stats.Value()) {
    if (value != 0) {
      std::printf("  %-20s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    }
  }

  // 6. --metrics: the engine-wide registry over the Metrics wire frame —
  //    what a scraper would read from Server::MetricsText().
  if (print_metrics) {
    auto metrics = client.Metrics();
    Check(metrics.ok(), "metrics");
    std::printf("--- metrics ---\n%s", metrics.Value().c_str());
    Check(metrics.Value().find("stems_server_submits_admitted") !=
              std::string::npos,
          "exposition carries the admission counters");
    Check(metrics.Value().find("stems_engine_queries_completed") !=
              std::string::npos,
          "exposition carries the engine completion counter");
  }

  Check(client.Close().ok(), "close");
  server.Shutdown();
  std::printf("OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool metrics = false;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics = true;
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--metrics] [--explain]\n"
                   "  --metrics  print the server's Prometheus exposition\n"
                   "  --explain  print an EXPLAIN ANALYZE profile\n",
                   argv[0]);
      return 2;
    }
  }
  if (explain) return RunExplain();
  return RunServe(metrics);
}
