// Continuous-query scenario (paper §2.2/§6, CACQ/PSouP lineage): join two
// long data streams with sliding-window SteMs that evict old tuples.
//
// Because each base-table component lives in exactly one SteM (no
// intermediate results are materialized, §2.3), eviction is a local
// operation: the SteM drops its oldest singletons and the join becomes a
// window join. The query never "completes"; we drive the engine's shared
// clock to a time horizon and report the steady state.
#include <cstdio>

#include "engine/engine.h"
#include "storage/generators.h"

using namespace stems;

int main() {
  constexpr size_t kStreamLen = 20000;
  constexpr size_t kWindow = 500;  // tuples kept per SteM

  Engine engine;
  Schema clicks({{"user", ValueType::kInt64}, {"page", ValueType::kInt64}});
  Schema buys({{"user", ValueType::kInt64}, {"amount", ValueType::kInt64}});
  // Zipf-skewed users: hot users join often, as in real clickstreams.
  std::vector<ColumnGenSpec> click_cols{
      {"user", ColumnGenSpec::Kind::kZipf, 0, 0, 2000, 1.1},
      {"page", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0}};
  std::vector<ColumnGenSpec> buy_cols{
      {"user", ColumnGenSpec::Kind::kZipf, 0, 0, 2000, 1.1},
      {"amount", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0}};
  engine.AddTable(TableDef{"clicks", clicks,
                           {{"clicks.stream", AccessMethodKind::kScan, {}}}},
                  GenerateRows(click_cols, kStreamLen, 8)).IgnoreError();
  engine.AddTable(
      TableDef{"buys", buys, {{"buys.stream", AccessMethodKind::kScan, {}}}},
      GenerateRows(buy_cols, kStreamLen, 9)).IgnoreError();

  const char* sql = "SELECT * FROM clicks, buys WHERE clicks.user = buys.user";
  std::printf("continuous query: %s\n", sql);
  std::printf("window: last %zu tuples per stream\n\n", kWindow);

  RunOptions options;
  options.exec.scan_defaults.period = Millis(1);  // 1000 tuples/s per stream
  options.exec.stem_defaults.max_entries = kWindow;
  QueryHandle handle = engine.Query(sql, options).ValueOrDie();

  // Drive the stream and sample the running state each virtual second. The
  // handle's eddy is the observability escape hatch into the dataflow.
  const Eddy* eddy = handle.eddy();
  std::printf("%8s %12s %12s %12s %12s\n", "t(s)", "results", "clicks_win",
              "buys_win", "evictions");
  for (int second = 1; second <= 10; ++second) {
    engine.sim().RunUntil(Seconds(second));
    const Stem* cs = eddy->StemForTable("clicks");
    const Stem* bs = eddy->StemForTable("buys");
    std::printf("%8d %12llu %12zu %12zu %12llu\n", second,
                static_cast<unsigned long long>(eddy->num_results()),
                cs->num_entries(), bs->num_entries(),
                static_cast<unsigned long long>(cs->evictions() +
                                                bs->evictions()));
  }

  std::printf("\nwindowed join emitted %llu results over 10 virtual "
              "seconds; SteM windows held at %zu entries each.\n",
              static_cast<unsigned long long>(eddy->num_results()), kWindow);
  std::printf("constraint violations: %zu\n",
              handle.Stats().constraint_violations);
  return handle.Stats().constraint_violations == 0 ? 0 : 1;
}
