// Figure 7 (paper §4.2): index join vs SteMs on query Q1.
//
//   Q1: SELECT * FROM R, S WHERE R.a = S.x
//
// R has 1000 tuples with 250 distinct values of `a` and a scan AM; S is an
// asynchronous index source (Table 3). The traditional plan (Figure 5)
// routes R through an index-join module that hides a lookup cache and the
// remote index behind one input queue; the SteM plan (Figure 6) splits them
// into SteM(S) (cache + rendezvous buffer) and the index AM.
//
// Figure 7(i): results over time — index join is parabolic (its single
// server stalls cache-hit probes behind remote misses: head-of-line
// blocking), SteMs are near-linear and ahead throughout, with similar total
// completion time.
// Figure 7(ii): cumulative index probes — the two curves are almost
// identical (the SteM plan does no extra remote work).
#include <cstdio>
#include <memory>

#include "baseline/index_join_op.h"
#include "baseline/operator.h"
#include "bench/bench_util.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRRows = 1000;
constexpr size_t kDistinctA = 250;
constexpr SimTime kScanPeriod = Millis(55);       // R scanned in ~55 s
constexpr SimTime kIndexLatency = Millis(1500);   // identical sleeps (Table 3)
constexpr SimTime kHorizon = Seconds(420);
constexpr SimTime kStep = Seconds(20);

struct Setup {
  Catalog catalog;
  TableStore store;
  QuerySpec query;
};

void Build(Setup* s) {
  TableDef r{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}};
  TableDef sdef{"S", SchemaS(), {{"S.idx_x", AccessMethodKind::kIndex, {0}}}};
  s->catalog.AddTable(r).IgnoreError();
  s->catalog.AddTable(sdef).IgnoreError();
  s->store.AddTable("R", SchemaR(), GenerateTableR(kRRows, kDistinctA, 7))
      .IgnoreError();
  s->store.AddTable("S", SchemaS(), GenerateTableS(kDistinctA)).IgnoreError();
  QueryBuilder qb(s->catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  s->query = qb.Build().ValueOrDie();
}

/// Figure 5: static plan with the encapsulated index join.
void RunIndexJoin(const Setup& s, CounterSeries* results,
                  CounterSeries* probes) {
  Simulation sim;
  StaticPlan plan(s.query, &sim);
  ScanAmOptions scan_opts;
  scan_opts.period = kScanPeriod;
  auto* scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "R.scan", "R",
      s.store.GetTable("R").ValueOrDie()->rows(), scan_opts));
  IndexJoinOpOptions jopts;
  jopts.lookup_latency = std::make_shared<FixedLatency>(kIndexLatency);
  auto* join = plan.AddModule(std::make_unique<IndexJoinOp>(
      plan.ctx(), "S.idxjoin", /*probe_mask=*/0b01, /*table_slot=*/1,
      std::vector<int>{0}, s.store.GetTable("S").ValueOrDie(), jopts));
  plan.Connect(scan, join);
  plan.ConnectToSink(join);
  plan.Run();
  *results = plan.ctx()->metrics.Series("results");
  *probes = plan.ctx()->metrics.Series("S.idxjoin.probes");
}

/// Figure 6: eddy with SteM(R), SteM(S), scan AM on R, index AM on S.
void RunStems(const Setup& s, CounterSeries* results, CounterSeries* probes) {
  Simulation sim;
  ExecutionConfig config;
  config.scan_defaults.period = kScanPeriod;
  config.index_defaults.latency = std::make_shared<FixedLatency>(kIndexLatency);
  config.index_defaults.concurrency = 1;
  auto eddy = PlanQuery(s.query, s.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(PolicyRegistry::Global().Create("nary_shj").ValueOrDie());
  eddy->RunToCompletion();
  if (!eddy->violations().empty()) {
    std::printf("WARNING: %zu constraint violations\n",
                eddy->violations().size());
  }
  *results = eddy->ctx()->metrics.Series("results");
  *probes = eddy->ctx()->metrics.Series("S.idx_x.probes");
}

}  // namespace
}  // namespace stems

int main() {
  using namespace stems;
  using namespace stems::bench;

  PrintHeader("bench_fig7_q1 — Q1: R(scan) join S(async index)",
              "Figure 7 (i)+(ii), §4.2",
              "index join parabolic vs SteM near-linear; probe curves "
              "nearly identical; similar completion");

  Setup s;
  Build(&s);

  CounterSeries ij_results, ij_probes, stem_results, stem_probes;
  RunIndexJoin(s, &ij_results, &ij_probes);
  RunStems(s, &stem_results, &stem_probes);

  PrintSeriesTable("Fig 7(i): result tuples over time", kHorizon, kStep,
                   {{"index_join", &ij_results}, {"stems", &stem_results}});
  PrintSeriesTable("Fig 7(ii): index probes over time", kHorizon, kStep,
                   {{"index_join", &ij_probes}, {"stems", &stem_probes}});

  std::printf("\n## Summary\n\n");
  PrintKeyValue("index join: total results", ij_results.total(), "tuples");
  PrintKeyValue("stems:      total results", stem_results.total(), "tuples");
  PrintKeyValue("index join: completion",
                CompletionSeconds(ij_results, ij_results.total()), "s");
  PrintKeyValue("stems:      completion",
                CompletionSeconds(stem_results, stem_results.total()), "s");
  PrintKeyValue("index join: remote probes", ij_probes.total(), "lookups");
  PrintKeyValue("stems:      remote probes", stem_probes.total(), "lookups");
  PrintKeyValue("index join: results by t=100s", ij_results.ValueAt(Seconds(100)),
                "tuples");
  PrintKeyValue("stems:      results by t=100s",
                stem_results.ValueAt(Seconds(100)), "tuples");
  return 0;
}
