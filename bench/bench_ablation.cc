// Ablations over the design choices DESIGN.md calls out:
#include <chrono>
//   A. index-AM probe coalescing on/off (redundant remote work saved by the
//      shared SteM + rendezvous design, §3.3);
//   B. SteM probe bounce mode (kConstraintOnly vs kAlways) — how much index
//      traffic the policy's freedom costs/buys on a scan+index table;
//   C. global memory budget sweep (§6 governor) — window size vs. results;
//   D. adaptive SteM index upgrade threshold — list vs hash crossover.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "storage/generators.h"

namespace stems {
namespace {

// --- A: coalescing -----------------------------------------------------------

void AblationCoalescing() {
  std::printf("\n## A. index probe coalescing (Q1-style, 400 R tuples, "
              "100 distinct keys)\n\n");
  for (bool coalesce : {true, false}) {
    Engine engine;
    engine.AddTable(
        TableDef{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}},
        GenerateTableR(400, 100, 3)).IgnoreError();
    engine.AddTable(
        TableDef{"S", SchemaS(), {{"S.idx", AccessMethodKind::kIndex, {0}}}},
        GenerateTableS(100)).IgnoreError();
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options;
    options.exec.scan_defaults.period = Millis(2);
    options.exec.index_defaults.latency =
        std::make_shared<FixedLatency>(Millis(40));
    options.exec.index_defaults.concurrency = 4;
    options.exec.index_defaults.coalesce_duplicate_probes = coalesce;
    QueryHandle handle = bench::RunQuery(engine, query, options);
    const QueryStats stats = handle.Stats();
    std::printf(
        "  coalescing %-3s  remote lookups %4lld   results %4llu   "
        "completion %6.2f s   stem dups %llu\n",
        coalesce ? "on" : "off",
        static_cast<long long>(
            handle.metrics().Series("S.idx.probes").total()),
        static_cast<unsigned long long>(stats.num_results),
        bench::CompletionSeconds(handle.metrics().Series("results"),
                                 static_cast<int64_t>(stats.num_results)),
        static_cast<unsigned long long>(
            handle.eddy()->StemForTable("S")->duplicates_absorbed()));
  }
}

// --- B: bounce mode ------------------------------------------------------------

void AblationBounceMode() {
  std::printf("\n## B. SteM probe bounce mode (scan+index table)\n\n");
  for (auto mode : {ProbeBounceMode::kConstraintOnly, ProbeBounceMode::kAlways}) {
    Engine engine;
    engine.AddTable(
        TableDef{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}},
        GenerateTableR(400, 400, 5)).IgnoreError();
    engine.AddTable(TableDef{"T",
                             SchemaT(),
                             {{"T.scan", AccessMethodKind::kScan, {}},
                              {"T.idx", AccessMethodKind::kIndex, {0}}}},
                    GenerateTableT(400, 6)).IgnoreError();
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options = RunOptions::Paper();  // benefit_cost routing
    options.exec.scan_overrides["R.scan"].period = Millis(5);
    options.exec.scan_overrides["T.scan"].period = Millis(40);  // slow scan
    options.exec.index_defaults.latency =
        std::make_shared<FixedLatency>(Millis(60));
    StemOptions t_stem;
    t_stem.bounce_mode = mode;
    options.exec.stem_overrides["T"] = t_stem;
    QueryHandle handle = bench::RunQuery(engine, query, options);
    const auto& results = handle.metrics().Series("results");
    std::printf(
        "  %-16s index lookups %4lld   results@4s %4lld   completion %6.2f s\n",
        mode == ProbeBounceMode::kAlways ? "kAlways" : "kConstraintOnly",
        static_cast<long long>(
            handle.metrics().Series("T.idx.probes").total()),
        static_cast<long long>(results.ValueAt(Seconds(4))),
        bench::CompletionSeconds(results, results.total()));
  }
}

// --- C: memory budget sweep -----------------------------------------------------

void AblationMemoryBudget() {
  std::printf("\n## C. global memory budget (§6 governor; window-join "
              "results vs budget)\n\n");
  for (size_t budget : {0ul, 800ul, 400ul, 100ul, 25ul}) {
    Engine engine;
    auto schema = Schema({{"k", ValueType::kInt64}});
    std::vector<ColumnGenSpec> cols{
        {"k", ColumnGenSpec::Kind::kUniform, 0, 499, 0, 0}};
    engine.AddTable(
        TableDef{"A", schema, {{"A.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 500, 71)).IgnoreError();
    engine.AddTable(
        TableDef{"B", schema, {{"B.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 500, 72)).IgnoreError();
    QueryBuilder qb(engine.catalog());
    qb.AddTable("A").AddTable("B").AddJoin("A.k", "B.k");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options;
    options.exec.scan_defaults.period = Millis(1);
    options.exec.eddy.memory.global_entry_budget = budget;
    QueryHandle handle = bench::RunQuery(engine, query, options);
    const MemoryGovernor& governor = handle.eddy()->memory_governor();
    std::printf("  budget %5zu   results %4llu   evicted %5llu   "
                "final entries %4zu\n",
                budget,
                static_cast<unsigned long long>(handle.Stats().num_results),
                static_cast<unsigned long long>(governor.total_evicted()),
                governor.TotalEntries());
  }
}

// --- D: adaptive index threshold -------------------------------------------------

void AblationAdaptiveThreshold() {
  std::printf("\n## D. adaptive SteM index upgrade threshold "
              "(probe-heavy 2-table join)\n\n");
  for (size_t threshold : {4ul, 64ul, 100000ul}) {
    Engine engine;
    auto schema = Schema({{"k", ValueType::kInt64}});
    std::vector<ColumnGenSpec> cols{
        {"k", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0}};
    engine.AddTable(
        TableDef{"A", schema, {{"A.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 2000, 81)).IgnoreError();
    engine.AddTable(
        TableDef{"B", schema, {{"B.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 2000, 82)).IgnoreError();
    QueryBuilder qb(engine.catalog());
    qb.AddTable("A").AddTable("B").AddJoin("A.k", "B.k");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options;
    options.exec.scan_defaults.period = Micros(100);
    options.exec.stem_defaults.index_impl = StemIndexImpl::kAdaptive;
    options.exec.stem_defaults.adaptive_threshold = threshold;
    QueryHandle handle = engine.Submit(query, options).ValueOrDie();
    auto start = std::chrono::steady_clock::now();
    handle.Wait();
    auto wall_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                       std::chrono::steady_clock::now() - start)
                       .count();
    std::printf("  threshold %6zu   impl now '%s'   results %5llu   "
                "host wall time %4lld ms\n",
                threshold,
                handle.eddy()->StemForTable("A")->IndexImplFor(0).c_str(),
                static_cast<unsigned long long>(handle.Stats().num_results),
                static_cast<long long>(wall_ms));
  }
  std::printf("  (with threshold=100000 the index never upgrades: every "
              "probe scans the list — the §3.1 motivation for letting the "
              "SteM adapt its own implementation)\n");
}

}  // namespace
}  // namespace stems

int main() {
  stems::bench::PrintHeader(
      "bench_ablation — design-choice ablations",
      "§3.3 coalescing, §4.1/§4.3 bounce modes, §6 memory control, "
      "§3.1 adaptive SteM indexes",
      "each knob shows its intended effect in isolation");
  stems::AblationCoalescing();
  stems::AblationBounceMode();
  stems::AblationMemoryBudget();
  stems::AblationAdaptiveThreshold();
  return 0;
}
