// bench_server: load generator for the network front-end (src/server/).
//
// Starts a Server on an ephemeral loopback port over a shared engine with
// pooled SteMs, then drives it with N concurrent client threads split
// across two tenants. Each client prepares a mixed statement set once and
// then loops Bind -> Submit -> Fetch-to-end with random parameters,
// timing every query wall-clock. Reports per-tenant p50/p99 latency and
// queries/sec.
//
//   ./build/bench/bench_server [--quick] [--json BENCH_server.json]
//
// --quick shrinks the fleet and per-client query count for the CI
// bench-smoke job, which merges the JSON (google-benchmark shaped:
// {"benchmarks": [{"name": "BM_ServerLoad/tenant:...", ...}]}) into
// BENCH_results.json and asserts p50/p99/qps are present and nonzero.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"

using namespace stems;
using server::Client;
using server::Server;
using server::ServerOptions;
using server::TenantConfig;

namespace {

bool g_quick = false;
size_t ClientsPerTenant() { return g_quick ? 2 : 4; }
size_t QueriesPerClient() { return g_quick ? 12 : 60; }

constexpr const char* kTenants[2] = {"tenant_a", "tenant_b"};

/// The mixed prepared-statement set every client cycles through.
const char* kStatements[] = {
    "SELECT u.id, o.item_id FROM users u, orders o "
    "WHERE u.id = o.user_id AND u.age >= $min",
    "SELECT R.b, S.y FROM R, S WHERE R.a = S.x AND R.b >= $min",
    "SELECT u.id FROM users u WHERE u.age >= $min",
};
constexpr size_t kNumStatements = sizeof(kStatements) / sizeof(kStatements[0]);

void Fill(Engine* engine) {
  std::vector<RowRef> users, orders, r, s;
  Rng rng(7);
  for (int64_t i = 1; i <= 50; ++i) {
    users.push_back(MakeRow(
        {Value::Int64(i), Value::Int64(20 + static_cast<int64_t>(
                                               rng.NextBounded(40)))}));
  }
  for (int64_t i = 0; i < 120; ++i) {
    orders.push_back(
        MakeRow({Value::Int64(1 + static_cast<int64_t>(rng.NextBounded(50))),
                 Value::Int64(static_cast<int64_t>(rng.NextBounded(20)))}));
  }
  for (int64_t i = 0; i < 80; ++i) {
    r.push_back(MakeRow({Value::Int64(i % 16), Value::Int64(i)}));
    s.push_back(MakeRow({Value::Int64(i % 16), Value::Int64(i % 8)}));
  }
  Schema users_schema({{"id", ValueType::kInt64}, {"age", ValueType::kInt64}});
  Schema orders_schema(
      {{"user_id", ValueType::kInt64}, {"item_id", ValueType::kInt64}});
  Schema r_schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  Schema s_schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}});
  auto die = [](const Status& st) {
    if (!st.ok()) {
      std::fprintf(stderr, "setup: %s\n", st.ToString().c_str());
      std::exit(1);
    }
  };
  die(engine->AddTable(
      TableDef{"users", users_schema,
               {{"users.scan", AccessMethodKind::kScan, {}}}},
      std::move(users)));
  die(engine->AddTable(
      TableDef{"orders", orders_schema,
               {{"orders.scan", AccessMethodKind::kScan, {}}}},
      std::move(orders)));
  die(engine->AddTable(
      TableDef{"R", r_schema, {{"R.scan", AccessMethodKind::kScan, {}}}},
      std::move(r)));
  die(engine->AddTable(
      TableDef{"S", s_schema, {{"S.scan", AccessMethodKind::kScan, {}}}},
      std::move(s)));
}

struct TenantSample {
  std::vector<double> latencies_ms;  // one per completed query
  double qps = 0;
};

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t idx = std::min(
      v.size() - 1, static_cast<size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// One client session's whole run; returns its per-query latencies.
std::vector<double> RunClient(uint16_t port, const std::string& tenant,
                              uint64_t seed) {
  Client client;
  Status st = client.Connect("127.0.0.1", port, tenant);
  if (!st.ok()) {
    std::fprintf(stderr, "connect: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  // Parse + bind once per statement; the loop below reuses the handles.
  uint32_t stmt_ids[kNumStatements];
  for (size_t i = 0; i < kNumStatements; ++i) {
    auto prepared = client.Prepare(kStatements[i]);
    if (!prepared.ok()) {
      std::fprintf(stderr, "prepare: %s\n",
                   prepared.status().ToString().c_str());
      std::exit(1);
    }
    stmt_ids[i] = prepared.Value().stmt_id;
  }
  Rng rng(seed);
  std::vector<double> latencies_ms;
  latencies_ms.reserve(QueriesPerClient());
  for (size_t q = 0; q < QueriesPerClient(); ++q) {
    const uint32_t stmt = stmt_ids[rng.NextBounded(kNumStatements)];
    const int64_t min = static_cast<int64_t>(rng.NextBounded(50));
    const auto t0 = std::chrono::steady_clock::now();
    auto portal =
        client.Bind(stmt, sql::SqlParams().Set("min", Value::Int64(min)));
    if (!portal.ok()) std::exit(1);
    auto submit = client.Submit(portal.Value());
    if (!submit.ok()) std::exit(1);
    while (true) {
      auto fetch = client.Fetch(submit.Value().query_id);
      if (!fetch.ok()) {
        std::fprintf(stderr, "fetch: %s\n", fetch.status().ToString().c_str());
        std::exit(1);
      }
      if (fetch.Value().done) break;
      if (fetch.Value().rows.empty()) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    }
    const auto t1 = std::chrono::steady_clock::now();
    latencies_ms.push_back(
        std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  st = client.Close();
  if (!st.ok()) {
    std::fprintf(stderr, "close: %s\n", st.ToString().c_str());
    std::exit(1);
  }
  return latencies_ms;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  Engine engine;
  Fill(&engine);
  ServerOptions options;
  options.run_options.share_stems = true;
  for (const char* name : kTenants) {
    TenantConfig tenant;
    tenant.name = name;
    tenant.quota.max_concurrent_queries = 8;
    tenant.quota.max_queued_submits = 64;
    options.tenants.push_back(tenant);
  }
  Server server(&engine, options);
  {
    const Status st = server.Start();
    if (!st.ok()) {
      std::fprintf(stderr, "server start: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  const size_t fleet = 2 * ClientsPerTenant();
  std::printf("bench_server: %zu clients x %zu queries over 2 tenants "
              "(port %u)\n",
              fleet, QueriesPerClient(), server.port());

  std::vector<std::vector<double>> per_client(fleet);
  std::vector<std::thread> threads;
  const auto wall0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < fleet; ++i) {
    const std::string tenant = kTenants[i % 2];
    threads.emplace_back([&per_client, i, tenant, port = server.port()] {
      per_client[i] = RunClient(port, tenant, /*seed=*/1000 + i);
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - wall0)
                            .count();

  TenantSample samples[2];
  for (size_t i = 0; i < fleet; ++i) {
    auto& sample = samples[i % 2];
    sample.latencies_ms.insert(sample.latencies_ms.end(),
                               per_client[i].begin(), per_client[i].end());
  }

  std::string json = "{\n \"benchmarks\": [\n";
  for (size_t t = 0; t < 2; ++t) {
    const auto& sample = samples[t];
    const double p50 = Percentile(sample.latencies_ms, 0.50);
    const double p99 = Percentile(sample.latencies_ms, 0.99);
    const double qps =
        static_cast<double>(sample.latencies_ms.size()) / wall_s;
    const server::TenantRollup rollup = server.TenantStats(kTenants[t]);
    std::printf(
        "%s: %zu queries  p50 %.3f ms  p99 %.3f ms  %.0f qps  "
        "(%llu results, %llu queued, %llu rejected)\n",
        kTenants[t], sample.latencies_ms.size(), p50, p99, qps,
        static_cast<unsigned long long>(rollup.num_results),
        static_cast<unsigned long long>(rollup.queries_queued),
        static_cast<unsigned long long>(rollup.queries_rejected));
    char entry[512];
    std::snprintf(entry, sizeof(entry),
                  "  {\"name\": \"BM_ServerLoad/tenant:%s\", "
                  "\"p50_ms\": %.6f, \"p99_ms\": %.6f, \"qps\": %.3f, "
                  "\"num_results\": %llu}%s\n",
                  kTenants[t], p50, p99, qps,
                  static_cast<unsigned long long>(rollup.num_results),
                  t + 1 < 2 ? "," : "");
    json += entry;
  }
  json += " ]\n}\n";

  server.Shutdown();

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
