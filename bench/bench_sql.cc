// SQL front-end benchmarks (google-benchmark): parse+bind throughput of
// Engine::Query's compile path, the PreparedQuery::Bind hot path, and the
// prepare-vs-query speedup the serving story rests on.
//
// Counters published into BENCH_results.json by the bench-smoke CI job:
//   * sql_parses_per_sec — full lex+parse+resolve+validate pipeline rate;
//   * binds_per_sec      — PreparedQuery::Bind (clone + patch constants);
//   * prepare_speedup    — parse+bind cost / prepared-bind cost, asserted
//                          >= 5x in CI (the whole point of Prepare()).
#include <benchmark/benchmark.h>

#include <chrono>

#include "engine/engine.h"
#include "sql/binder.h"

namespace stems {
namespace {

/// A representative serving query: three-way join, two parameterized
/// selections, explicit projection, LIMIT.
constexpr char kServingSql[] =
    "SELECT u.id, i.price FROM users u, orders o, items i "
    "WHERE u.id = o.user_id AND o.item_id = i.id AND u.age >= $min_age "
    "AND i.price < $max_price LIMIT 100";

void FillCatalog(Engine* engine) {
  Schema users({{"id", ValueType::kInt64}, {"age", ValueType::kInt64}});
  Schema orders(
      {{"user_id", ValueType::kInt64}, {"item_id", ValueType::kInt64}});
  Schema items({{"id", ValueType::kInt64}, {"price", ValueType::kInt64}});
  engine->AddTable(TableDef{"users", users,
                            {{"users.scan", AccessMethodKind::kScan, {}}}},
                   {}).IgnoreError();
  engine->AddTable(TableDef{"orders", orders,
                            {{"orders.scan", AccessMethodKind::kScan, {}}}},
                   {}).IgnoreError();
  engine->AddTable(TableDef{"items", items,
                            {{"items.scan", AccessMethodKind::kScan, {}}}},
                   {}).IgnoreError();
}

sql::SqlParams ServingParams() {
  return sql::SqlParams()
      .Set("min_age", Value::Int64(30))
      .Set("max_price", Value::Int64(500));
}

/// The Engine::Query compile path: tokenize, parse, resolve every name
/// against the catalog, validate, build the spec.
void BM_SqlParseBind(benchmark::State& state) {
  Engine engine;
  FillCatalog(&engine);
  for (auto _ : state) {
    auto bound = sql::ParseAndBind(kServingSql, engine.catalog());
    if (!bound.ok()) state.SkipWithError("parse+bind failed");
    benchmark::DoNotOptimize(bound);
  }
  state.counters["sql_parses_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SqlParseBind);

/// The serving hot path: PreparedQuery::Bind clones the bound spec and
/// patches parameter constants — no lexing, no catalog lookups.
void BM_PreparedBind(benchmark::State& state) {
  Engine engine;
  FillCatalog(&engine);
  PreparedQuery prepared = engine.Prepare(kServingSql).ValueOrDie();
  const sql::SqlParams params = ServingParams();
  for (auto _ : state) {
    BoundQuery bound = prepared.Bind(params);
    if (!bound.status().ok()) state.SkipWithError("bind failed");
    benchmark::DoNotOptimize(bound);
  }
  state.counters["binds_per_sec"] =
      benchmark::Counter(static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PreparedBind);

/// Prepare-vs-Query speedup, measured in one benchmark so the ratio lands
/// in a single JSON entry: each iteration compiles the statement from text
/// once and Bind()s the prepared form once, on the same clock.
void BM_PrepareSpeedup(benchmark::State& state) {
  Engine engine;
  FillCatalog(&engine);
  PreparedQuery prepared = engine.Prepare(kServingSql).ValueOrDie();
  const sql::SqlParams params = ServingParams();

  using Clock = std::chrono::steady_clock;
  std::chrono::nanoseconds parse_ns{0};
  std::chrono::nanoseconds bind_ns{0};
  for (auto _ : state) {
    auto t0 = Clock::now();
    auto compiled = sql::ParseAndBind(kServingSql, engine.catalog());
    auto t1 = Clock::now();
    BoundQuery bound = prepared.Bind(params);
    auto t2 = Clock::now();
    if (!compiled.ok() || !bound.status().ok()) {
      state.SkipWithError("front end failed");
    }
    benchmark::DoNotOptimize(compiled);
    benchmark::DoNotOptimize(bound);
    parse_ns += t1 - t0;
    bind_ns += t2 - t1;
  }
  const double speedup =
      bind_ns.count() > 0
          ? static_cast<double>(parse_ns.count()) /
                static_cast<double>(bind_ns.count())
          : 0.0;
  state.counters["prepare_speedup"] = benchmark::Counter(speedup);
}
BENCHMARK(BM_PrepareSpeedup);

}  // namespace
}  // namespace stems

BENCHMARK_MAIN();
