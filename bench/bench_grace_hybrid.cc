// §3.1: "Simulating and hybridizing non-pipelined join algorithms" —
// SHJ vs Grace hash join vs their hybrid, all as SteM configurations.
//
// The SteM's "asynchronous hash index" mode defers build bounce-backs,
// clustered by hash partition, and charges a partition-switch penalty on
// probes (modelling partition I/O locality). With immediate bounces the
// eddy executes a symmetric hash join: interactive, but probes hop between
// partitions at random. With large deferred batches it executes Grace:
// probes arrive clustered (cheap), but results are delayed. Intermediate
// batch sizes hybridize, trading early results against total work —
// exactly the frequent-probe/occasional-probe dial of §3.1.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRows = 1500;
constexpr int64_t kDomain = 1500;
constexpr SimTime kScanPeriod = Millis(4);
constexpr size_t kPartitions = 16;
constexpr SimTime kSwitchPenalty = Millis(12);

/// --quick (CI bench-smoke, matching bench_reorder): same workload shape at
/// 1/5 the size; the hybrid batch scales with it so the three regimes stay
/// distinguishable.
bool g_quick = false;
size_t Rows() { return g_quick ? kRows / 5 : kRows; }
int64_t Domain() { return g_quick ? kDomain / 5 : kDomain; }
size_t HybridBatch() { return g_quick ? 8 : 24; }

struct Outcome {
  CounterSeries results;
  double stem_busy_seconds = 0;
  size_t violations = 0;
};

Outcome Run(size_t bounce_batch) {
  Catalog catalog;
  TableStore store;
  auto schema = Schema({{"k", ValueType::kInt64}});
  catalog.AddTable(
      TableDef{"R", schema, {{"R.scan", AccessMethodKind::kScan, {}}}})
      .IgnoreError();
  catalog.AddTable(
      TableDef{"S", schema, {{"S.scan", AccessMethodKind::kScan, {}}}})
      .IgnoreError();
  std::vector<ColumnGenSpec> one_uniform{
      {"k", ColumnGenSpec::Kind::kUniform, 0, Domain() - 1, 0, 0}};
  store.AddTable("R", schema, GenerateRows(one_uniform, Rows(), 31))
      .IgnoreError();
  store.AddTable("S", schema, GenerateRows(one_uniform, Rows(), 32))
      .IgnoreError();
  QueryBuilder qb(catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.k");
  QuerySpec query = qb.Build().ValueOrDie();

  Simulation sim;
  ExecutionConfig config;
  config.scan_defaults.period = kScanPeriod;
  config.stem_defaults.num_partitions = kPartitions;
  config.stem_defaults.bounce_batch = bounce_batch;
  config.stem_defaults.partition_switch_penalty = kSwitchPenalty;
  auto eddy = PlanQuery(query, store, &sim, config).ValueOrDie();
  eddy->SetPolicy(PolicyRegistry::Global().Create("nary_shj").ValueOrDie());
  eddy->RunToCompletion();

  Outcome out;
  out.results = eddy->ctx()->metrics.Series("results");
  out.stem_busy_seconds =
      ToSeconds(static_cast<SimTime>(eddy->StemForTable("R")->stats().busy_time +
                                     eddy->StemForTable("S")->stats().busy_time));
  out.violations = eddy->violations().size();
  return out;
}

}  // namespace
}  // namespace stems

int main(int argc, char** argv) {
  using namespace stems;
  using namespace stems::bench;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) stems::g_quick = true;
  }

  PrintHeader(
      "bench_grace_hybrid — SHJ / Grace / hybrid via SteM bounce batching",
      "§3.1 (simulating & hybridizing non-pipelined join algorithms)",
      "SHJ (batch=1) yields results earliest but pays the most partition "
      "switching; Grace (batch=inf) defers results but minimizes probe "
      "cost; intermediate batches interpolate");

  Outcome shj = Run(1);
  Outcome hybrid = Run(HybridBatch());
  Outcome grace = Run(100000);  // flushes only on scan EOT: pure Grace
  if (shj.violations + hybrid.violations + grace.violations != 0) {
    std::printf("WARNING: constraint violations\n");
    return 1;
  }

  PrintSeriesTable("results over time",
                   stems::g_quick ? Seconds(8) : Seconds(36),
                   stems::g_quick ? Seconds(0.5) : Seconds(2),
                   {{"shj_batch1", &shj.results},
                    {"hybrid_batch24", &hybrid.results},
                    {"grace_batchEOT", &grace.results}});

  std::printf("\n## Summary\n\n");
  auto report = [](const char* name, const Outcome& o) {
    std::printf(
        "%-16s first result %7.2f s   half results %7.2f s   completion "
        "%7.2f s   stem busy %7.2f s\n",
        name, CompletionSeconds(o.results, 1),
        CompletionSeconds(o.results, o.results.total() / 2),
        CompletionSeconds(o.results, o.results.total()),
        o.stem_busy_seconds);
  };
  report("shj_batch1", shj);
  report("hybrid_batch24", hybrid);
  report("grace_batchEOT", grace);
  return 0;
}
