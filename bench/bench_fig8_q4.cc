// Figure 8 (paper §4.3): index/hash join hybridization on query Q4.
//
//   Q4: SELECT * FROM R, T WHERE R.key = T.key
//
// T has both an asynchronous index AM and a (slower-than-R) scan AM
// (Table 3). Three executions:
//   1. index join  — static plan probing T's index per R tuple;
//   2. hash join   — static symmetric hash join over both scans;
//   3. hybrid      — eddy + SteMs with the §4.1 benefit/cost policy and
//                    ProbeBounceMode::kAlways on SteM(T), free to route
//                    each bounced R tuple to the T index or retire it.
//
// Expected shapes: the index join leads in the first seconds (exact match
// per probe while the hash tables are still empty), the hash join catches
// up and wins handily overall; the hybrid tracks the best of the two, with
// completion slightly above the hash join because it keeps exploring the
// index (paper: "a small fraction of the R tuples ... throughout").
#include <cstdio>
#include <cstring>
#include <memory>

#include "baseline/index_join_op.h"
#include "baseline/operator.h"
#include "baseline/shj_op.h"
#include "bench/bench_util.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRows = 1000;
constexpr SimTime kRScanPeriod = Millis(59);    // R done at ~59 s
constexpr SimTime kTScanPeriod = Millis(120);   // T done at ~120 s
constexpr SimTime kIndexLatency = Millis(250);  // identical sleeps

/// --quick (CI bench-smoke, matching bench_reorder): same workload shape at
/// 1/5 the size; the scan/index timing ratios of Table 3 are preserved.
bool g_quick = false;
size_t Rows() { return g_quick ? kRows / 5 : kRows; }

struct Setup {
  Catalog catalog;
  TableStore store;
  QuerySpec query;
};

void Build(Setup* s) {
  TableDef r{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}};
  TableDef t{"T",
             SchemaT(),
             {{"T.scan", AccessMethodKind::kScan, {}},
              {"T.idx", AccessMethodKind::kIndex, {0}}}};
  s->catalog.AddTable(r).IgnoreError();
  s->catalog.AddTable(t).IgnoreError();
  // R.key = 0..N-1 in scan order; T.key = a random permutation of the same
  // domain, so early hash matches are probabilistic as in the paper.
  std::vector<RowRef> r_rows;
  for (size_t i = 0; i < Rows(); ++i) {
    r_rows.push_back(MakeRow({Value::Int64(static_cast<int64_t>(i)),
                              Value::Int64(static_cast<int64_t>(i % 250))}));
  }
  s->store.AddTable("R", SchemaR(), std::move(r_rows)).IgnoreError();
  s->store.AddTable("T", SchemaT(), GenerateTableT(Rows(), 11)).IgnoreError();
  QueryBuilder qb(s->catalog);
  qb.AddTable("R").AddTable("T").AddJoin("R.key", "T.key");
  s->query = qb.Build().ValueOrDie();
}

void RunIndexJoin(const Setup& s, CounterSeries* results) {
  Simulation sim;
  StaticPlan plan(s.query, &sim);
  ScanAmOptions scan_opts;
  scan_opts.period = kRScanPeriod;
  auto* scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "R.scan", "R",
      s.store.GetTable("R").ValueOrDie()->rows(), scan_opts));
  IndexJoinOpOptions jopts;
  jopts.lookup_latency = std::make_shared<FixedLatency>(kIndexLatency);
  auto* join = plan.AddModule(std::make_unique<IndexJoinOp>(
      plan.ctx(), "T.idxjoin", /*probe_mask=*/0b01, /*table_slot=*/1,
      std::vector<int>{0}, s.store.GetTable("T").ValueOrDie(), jopts));
  plan.Connect(scan, join);
  plan.ConnectToSink(join);
  plan.Run();
  *results = plan.ctx()->metrics.Series("results");
}

void RunHashJoin(const Setup& s, CounterSeries* results) {
  Simulation sim;
  StaticPlan plan(s.query, &sim);
  ScanAmOptions r_opts;
  r_opts.period = kRScanPeriod;
  ScanAmOptions t_opts;
  t_opts.period = kTScanPeriod;
  auto* r_scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "R.scan", "R",
      s.store.GetTable("R").ValueOrDie()->rows(), r_opts));
  auto* t_scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "T.scan", "T",
      s.store.GetTable("T").ValueOrDie()->rows(), t_opts));
  auto* shj = plan.AddModule(std::make_unique<ShjOp>(
      plan.ctx(), "RT.shj", /*left_mask=*/0b01, /*right_mask=*/0b10,
      /*key_predicate_id=*/0));
  plan.Connect(r_scan, shj);
  plan.Connect(t_scan, shj);
  plan.ConnectToSink(shj);
  plan.Run();
  *results = plan.ctx()->metrics.Series("results");
}

void RunHybrid(const Setup& s, CounterSeries* results, uint64_t* index_probes,
               size_t* violations) {
  Simulation sim;
  ExecutionConfig config;
  config.scan_overrides["R.scan"].period = kRScanPeriod;
  config.scan_overrides["T.scan"].period = kTScanPeriod;
  config.index_defaults.latency = std::make_shared<FixedLatency>(kIndexLatency);
  config.index_defaults.concurrency = 1;
  StemOptions t_stem;
  t_stem.bounce_mode = ProbeBounceMode::kAlways;
  config.stem_overrides["T"] = t_stem;
  auto eddy = PlanQuery(s.query, s.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(PolicyRegistry::Global().Create("benefit_cost").ValueOrDie());
  eddy->RunToCompletion();
  *results = eddy->ctx()->metrics.Series("results");
  *index_probes =
      static_cast<uint64_t>(eddy->ctx()->metrics.Series("T.idx.probes").total());
  *violations = eddy->violations().size();
}

}  // namespace
}  // namespace stems

int main(int argc, char** argv) {
  using namespace stems;
  using namespace stems::bench;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) stems::g_quick = true;
  }

  PrintHeader(
      "bench_fig8_q4 — Q4: R join T, T has scan + async index",
      "Figure 8 (i)+(ii), §4.3",
      "index join leads early; hash join wins overall; hybrid tracks the "
      "best of both, completing slightly after the hash join");

  Setup s;
  Build(&s);

  CounterSeries ij, hj, hy;
  uint64_t hybrid_probes = 0;
  size_t violations = 0;
  RunIndexJoin(s, &ij);
  RunHashJoin(s, &hj);
  RunHybrid(s, &hy, &hybrid_probes, &violations);
  if (violations != 0) {
    std::printf("WARNING: %zu constraint violations\n", violations);
    return 1;
  }

  const SimTime short_h = stems::g_quick ? Seconds(6) : Seconds(30);
  const SimTime long_h = stems::g_quick ? Seconds(40) : Seconds(200);
  PrintSeriesTable("Fig 8(i): results, early window", short_h, short_h / 10,
                   {{"hybrid", &hy}, {"index_join", &ij}, {"hash_join", &hj}});
  PrintSeriesTable("Fig 8(ii): results, full run", long_h, long_h / 20,
                   {{"hybrid", &hy}, {"index_join", &ij}, {"hash_join", &hj}});

  const int64_t n = static_cast<int64_t>(stems::Rows());
  std::printf("\n## Summary\n\n");
  PrintKeyValue("index join: completion", CompletionSeconds(ij, n), "s");
  PrintKeyValue("hash join:  completion", CompletionSeconds(hj, n), "s");
  PrintKeyValue("hybrid:     completion", CompletionSeconds(hy, n), "s");
  PrintKeyValue("hybrid: remote index probes",
                static_cast<int64_t>(hybrid_probes), "lookups");
  PrintKeyValue("hybrid: results by 15s", hy.ValueAt(Seconds(15)), "tuples");
  PrintKeyValue("index:  results by 15s", ij.ValueAt(Seconds(15)), "tuples");
  PrintKeyValue("hash:   results by 15s", hj.ValueAt(Seconds(15)), "tuples");
  return 0;
}
