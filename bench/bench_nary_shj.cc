// §2.3 / Figure 2: three ways to run a 3-table symmetric hash join —
// (i) pipelined binary SHJs, (ii) the unified n-ary SHJ operator,
// (iii) an eddy with SteMs.
//
// All three are pipelined and produce the same results; the interesting
// comparison is materialized state: the binary pipeline stores intermediate
// RS tuples in the upper join's hash tables, while the n-ary operator and
// the SteM engine store only base-table singletons (the space/recompute
// trade-off discussed in §2.3).
#include <cstdio>
#include <memory>

#include "baseline/nary_shj_op.h"
#include "baseline/shj_op.h"
#include "bench/bench_util.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRows = 400;
constexpr int64_t kDomain = 100;
constexpr SimTime kPeriod = Millis(8);

struct Setup {
  Catalog catalog;
  TableStore store;
  QuerySpec query;
};

void Build(Setup* s) {
  // Unique keys keep bag and set semantics identical, so the eddy's
  // set-semantics results are directly comparable with the operators'.
  auto schema2 = Schema({{"key", ValueType::kInt64},
                         {"a", ValueType::kInt64},
                         {"b", ValueType::kInt64}});
  for (const char* name : {"R", "S", "T"}) {
    s->catalog.AddTable(TableDef{
        name, schema2, {{std::string(name) + ".scan",
                         AccessMethodKind::kScan, {}}}}).IgnoreError();
  }
  std::vector<ColumnGenSpec> cols{
      {"key", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0},
      {"a", ColumnGenSpec::Kind::kUniform, 0, kDomain - 1, 0, 0},
      {"b", ColumnGenSpec::Kind::kUniform, 0, kDomain - 1, 0, 0}};
  s->store.AddTable("R", schema2, GenerateRows(cols, kRows, 41)).IgnoreError();
  s->store.AddTable("S", schema2, GenerateRows(cols, kRows, 42)).IgnoreError();
  s->store.AddTable("T", schema2, GenerateRows(cols, kRows, 43)).IgnoreError();
  QueryBuilder qb(s->catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.a").AddJoin("S.b", "T.b");
  s->query = qb.Build().ValueOrDie();
}

ScanAm* AddScan(StaticPlan* plan, const Setup& s, const char* table) {
  ScanAmOptions opts;
  opts.period = kPeriod;
  return plan->AddModule(std::make_unique<ScanAm>(
      plan->ctx(), std::string(table) + ".scan", table,
      s.store.GetTable(table).ValueOrDie()->rows(), opts));
}

void RunBinaryPipeline(const Setup& s, CounterSeries* results,
                       size_t* state, int64_t* result_count) {
  Simulation sim;
  StaticPlan plan(s.query, &sim);
  auto* r = AddScan(&plan, s, "R");
  auto* sc = AddScan(&plan, s, "S");
  auto* t = AddScan(&plan, s, "T");
  auto* rs = plan.AddModule(std::make_unique<ShjOp>(
      plan.ctx(), "RS.shj", 0b001, 0b010, /*key_predicate_id=*/0));
  auto* rst = plan.AddModule(std::make_unique<ShjOp>(
      plan.ctx(), "RST.shj", 0b011, 0b100, /*key_predicate_id=*/1));
  plan.Connect(r, rs);
  plan.Connect(sc, rs);
  plan.Connect(rs, rst);
  plan.Connect(t, rst);
  plan.ConnectToSink(rst);
  plan.Run();
  *results = plan.ctx()->metrics.Series("results");
  *state = rs->materialized_tuples() + rst->materialized_tuples();
  *result_count = static_cast<int64_t>(plan.results().size());
}

void RunNaryOp(const Setup& s, CounterSeries* results, size_t* state,
               int64_t* result_count) {
  Simulation sim;
  StaticPlan plan(s.query, &sim);
  auto* r = AddScan(&plan, s, "R");
  auto* sc = AddScan(&plan, s, "S");
  auto* t = AddScan(&plan, s, "T");
  auto* nary =
      plan.AddModule(std::make_unique<NaryShjOp>(plan.ctx(), "nary.shj"));
  plan.Connect(r, nary);
  plan.Connect(sc, nary);
  plan.Connect(t, nary);
  plan.ConnectToSink(nary);
  plan.Run();
  *results = plan.ctx()->metrics.Series("results");
  *state = nary->materialized_tuples();
  *result_count = static_cast<int64_t>(plan.results().size());
}

void RunStems(const Setup& s, CounterSeries* results, size_t* state,
              int64_t* result_count, size_t* violations) {
  Simulation sim;
  ExecutionConfig config;
  config.scan_defaults.period = kPeriod;
  auto eddy = PlanQuery(s.query, s.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(PolicyRegistry::Global().Create("nary_shj").ValueOrDie());
  eddy->RunToCompletion();
  *results = eddy->ctx()->metrics.Series("results");
  *state = eddy->StemForTable("R")->num_entries() +
           eddy->StemForTable("S")->num_entries() +
           eddy->StemForTable("T")->num_entries();
  *result_count = static_cast<int64_t>(eddy->num_results());
  *violations = eddy->violations().size();
}

}  // namespace
}  // namespace stems

int main() {
  using namespace stems;
  using namespace stems::bench;

  PrintHeader(
      "bench_nary_shj — 3-table SHJ: binary pipeline vs n-ary op vs SteMs",
      "§2.3 / Figure 2",
      "identical results from all three; binary pipeline materializes "
      "intermediate RS tuples, n-ary operator and SteMs store only "
      "base-table singletons");

  Setup s;
  Build(&s);

  CounterSeries bin_r, nary_r, stem_r;
  size_t bin_state = 0, nary_state = 0, stem_state = 0, violations = 0;
  int64_t bin_n = 0, nary_n = 0, stem_n = 0;
  RunBinaryPipeline(s, &bin_r, &bin_state, &bin_n);
  RunNaryOp(s, &nary_r, &nary_state, &nary_n);
  RunStems(s, &stem_r, &stem_state, &stem_n, &violations);
  if (violations != 0) std::printf("WARNING: constraint violations\n");

  PrintSeriesTable("results over time", Seconds(4), Micros(250000),
                   {{"binary_pipeline", &bin_r},
                    {"nary_operator", &nary_r},
                    {"eddy_stems", &stem_r}});

  std::printf("\n## Summary\n\n");
  PrintKeyValue("binary pipeline: results", bin_n, "tuples");
  PrintKeyValue("n-ary operator:  results", nary_n, "tuples");
  PrintKeyValue("eddy + SteMs:    results", stem_n, "tuples");
  PrintKeyValue("binary pipeline: materialized state",
                static_cast<int64_t>(bin_state), "tuples (incl. intermediates)");
  PrintKeyValue("n-ary operator:  materialized state",
                static_cast<int64_t>(nary_state), "singletons");
  PrintKeyValue("eddy + SteMs:    materialized state",
                static_cast<int64_t>(stem_state), "singletons");
  return 0;
}
