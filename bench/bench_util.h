// Shared helpers for the figure-reproduction benches.
//
// Each bench binary prints the series the corresponding paper figure plots
// (cumulative counts against virtual time), in a fixed-width table that
// EXPERIMENTS.md records.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "runtime/metrics.h"
#include "sim/clock.h"

namespace stems::bench {

/// Submits `query` on `engine` under `options` and runs it to completion.
/// Aborts on a planning/validation error — benches measure, they don't
/// handle. Results stay buffered on the returned handle.
inline QueryHandle RunQuery(Engine& engine, const QuerySpec& query,
                            RunOptions options = {}) {
  QueryHandle handle = engine.Submit(query, std::move(options)).ValueOrDie();
  handle.Wait();
  return handle;
}

/// Runs `fn(policy_name)` for every policy in the global registry — the
/// enumeration sweep the named-policy registry exists for.
template <typename Fn>
inline void ForEachRegisteredPolicy(Fn&& fn) {
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    fn(name);
  }
}

struct SeriesColumn {
  std::string name;
  const CounterSeries* series;
};

/// Prints `t  v1  v2 ...` rows sampled every `step` up to `horizon`.
inline void PrintSeriesTable(const std::string& title, SimTime horizon,
                             SimTime step,
                             const std::vector<SeriesColumn>& columns) {
  std::printf("\n## %s\n\n", title.c_str());
  std::printf("%10s", "t(s)");
  for (const auto& c : columns) std::printf("  %16s", c.name.c_str());
  std::printf("\n");
  for (SimTime t = 0; t <= horizon; t += step) {
    std::printf("%10.0f", ToSeconds(t));
    for (const auto& c : columns) {
      std::printf("  %16lld",
                  static_cast<long long>(c.series->ValueAt(t)));
    }
    std::printf("\n");
  }
}

/// Time (virtual seconds) at which `series` reached `target`; -1 if never.
inline double CompletionSeconds(const CounterSeries& series, int64_t target) {
  const SimTime t = series.TimeToReach(target);
  return t == kSimTimeNever ? -1.0 : ToSeconds(t);
}

inline void PrintKeyValue(const char* key, double value, const char* unit) {
  std::printf("%-44s %12.2f %s\n", key, value, unit);
}

inline void PrintKeyValue(const char* key, int64_t value, const char* unit) {
  std::printf("%-44s %12lld %s\n", key, static_cast<long long>(value), unit);
}

inline void PrintHeader(const char* bench, const char* paper_ref,
                        const char* expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", bench);
  std::printf("  reproduces: %s\n", paper_ref);
  std::printf("  expected shape: %s\n", expectation);
  std::printf("==============================================================\n");
}

}  // namespace stems::bench
