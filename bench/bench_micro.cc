// Micro-benchmarks (google-benchmark): SteM data-structure throughput, EOT
// coverage checks, eddy routing overhead, the cost of the constraint
// checker (an ablation over ConstraintMode), and an end-to-end sweep over
// every policy in the registry.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "stem/eot_store.h"
#include "stem/stem_index.h"
#include "storage/generators.h"

namespace stems {
namespace {

// --- SteM index implementations --------------------------------------------

void BM_StemIndexInsert(benchmark::State& state) {
  const auto impl = static_cast<StemIndexImpl>(state.range(0));
  const size_t n = 4096;
  Rng rng(1);
  std::vector<Value> keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Value::Int64(rng.NextInt(0, 1 << 20)));
  }
  for (auto _ : state) {
    auto index = MakeStemIndex(impl, 64);
    for (size_t i = 0; i < n; ++i) {
      index->Insert(keys[i], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_StemIndexInsert)
    ->Arg(static_cast<int>(StemIndexImpl::kHash))
    ->Arg(static_cast<int>(StemIndexImpl::kOrdered))
    ->Arg(static_cast<int>(StemIndexImpl::kAdaptive));

void BM_StemIndexLookup(benchmark::State& state) {
  const auto impl = static_cast<StemIndexImpl>(state.range(0));
  const size_t n = 4096;
  Rng rng(2);
  auto index = MakeStemIndex(impl, 64);
  std::vector<Value> keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Value::Int64(rng.NextInt(0, 1 << 16)));
    index->Insert(keys.back(), static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    index->LookupEq(keys[i++ % n], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StemIndexLookup)
    ->Arg(static_cast<int>(StemIndexImpl::kHash))
    ->Arg(static_cast<int>(StemIndexImpl::kOrdered))
    ->Arg(static_cast<int>(StemIndexImpl::kAdaptive));

// --- EOT coverage ------------------------------------------------------------

void BM_EotCoverage(benchmark::State& state) {
  const int64_t num_eots = state.range(0);
  EotStore store;
  for (int64_t i = 0; i < num_eots; ++i) {
    store.Add(MakeEotRowRef({Value::Int64(i), Value::Eot(), Value::Eot()}));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Covers({{0, Value::Int64(probe++ % (num_eots + 7))}}));
  }
}
BENCHMARK(BM_EotCoverage)->Arg(16)->Arg(256)->Arg(2048);

// --- End-to-end eddy: routing overhead & constraint checker ablation --------

}  // namespace

// External linkage: the policy-sweep registration in main() below names it.
// `batch_size` is the RunOptions::batch_size knob; the reported
// routed_per_sec / outputs_per_sec counters are the BENCH trajectory data
// points CI publishes (per policy and batch size).
void RunSmallQuery(ConstraintMode mode, const std::string& policy,
                   size_t batch_size, benchmark::State& state) {
  int64_t tuples_routed = 0;
  int64_t outputs = 0;
  double routing_secs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    auto schema = Schema({{"k", ValueType::kInt64}});
    std::vector<ColumnGenSpec> cols{
        {"k", ColumnGenSpec::Kind::kUniform, 0, 255, 0, 0}};
    engine.AddTable(
        TableDef{"R", schema, {{"R.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 512, 51)).IgnoreError();
    engine.AddTable(
        TableDef{"S", schema, {{"S.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 512, 52)).IgnoreError();
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.k");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options;
    options.policy = policy;
    options.batch_size = batch_size;
    options.exec.scan_defaults.period = Micros(1);
    options.exec.eddy.constraint_mode = mode;
    QueryHandle handle = engine.Submit(query, options).ValueOrDie();
    state.ResumeTiming();
    handle.Wait();
    const QueryStats stats = handle.Stats();
    tuples_routed += static_cast<int64_t>(stats.tuples_routed);
    outputs += static_cast<int64_t>(stats.num_results);
    routing_secs += static_cast<double>(stats.routing_wall_ns) * 1e-9;
  }
  state.SetItemsProcessed(tuples_routed);
  // Router-path throughput: tuples routed per second spent inside routing
  // steps (policy consultation + constraint audit + dispatch) — the cost
  // batch_size amortizes. items_per_second above stays the end-to-end rate.
  state.counters["routed_per_sec"] =
      benchmark::Counter(static_cast<double>(tuples_routed) / routing_secs);
  state.counters["outputs_per_sec"] = benchmark::Counter(
      static_cast<double>(outputs), benchmark::Counter::kIsRate);
  state.SetLabel("items = routing steps");
}

// Observability cost knob for the reorder workload: kDefault is the
// shipping configuration (registry publishing on, tracing off — the
// disabled trace path is one branch on a null pointer), kBare turns the
// whole observability layer off (the pre-observability baseline), kTraced
// samples every 64th event into the per-query ring. CI asserts kDefault
// within 3% and kTraced within 15% of kBare on routed_per_sec.
enum class ObsMode { kDefault, kBare, kTraced };

// The §4.1 reorder workload (bench_reorder's shape: prioritized subset of
// R, T with a slow scan plus an index, priority bounce on SteM(T)),
// measured for wall-clock routing throughput across batch sizes. This is
// the acceptance workload for the batched-dataflow refactor: batch_size=64
// must route ≥ 2x the tuples/sec of batch_size=1.
void RunReorderWorkload(size_t batch_size, benchmark::State& state,
                        ObsMode obs_mode = ObsMode::kDefault) {
  constexpr int64_t kPriorityCutoff = 10;
  int64_t tuples_routed = 0;
  int64_t outputs = 0;
  double routing_secs = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    // 1000 rows over 100 distinct join keys: probe hits arrive in
    // multi-match bursts, the arrival pattern that fills routing batches
    // (and that a production feed with skewed keys produces naturally).
    engine.AddTable(
        TableDef{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}},
        GenerateTableR(2000, 100, 5)).IgnoreError();
    engine.AddTable(TableDef{"T",
                             SchemaT(),
                             {{"T.scan", AccessMethodKind::kScan, {}},
                              {"T.idx", AccessMethodKind::kIndex, {0}}}},
                    GenerateTableT(250, 6)).IgnoreError();
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options;
    options.batch_size = batch_size;
    // bench_reorder's timing shape compressed 5000x, so source delivery
    // outpaces the 1us-per-step router and routing is the bottleneck —
    // the regime batching exists for. The virtual ratios (T scan 12x
    // slower than R, index lookups in between) are preserved.
    options.exec.scan_overrides["R.scan"].period = Micros(1);
    options.exec.scan_overrides["R.scan"].prioritizer = [](const Row& row) {
      return row.value(1).AsInt64() < kPriorityCutoff;
    };
    options.exec.scan_overrides["T.scan"].period = Micros(12);
    options.exec.index_defaults.latency =
        std::make_shared<FixedLatency>(Micros(40));
    StemOptions t_stem;
    t_stem.bounce_mode = ProbeBounceMode::kPrioritized;
    options.exec.stem_overrides["T"] = t_stem;
    if (obs_mode == ObsMode::kBare) options.publish_metrics = false;
    if (obs_mode == ObsMode::kTraced) options.trace_every_n = 64;
    QueryHandle handle = engine.Submit(query, options).ValueOrDie();
    state.ResumeTiming();
    handle.Wait();
    const QueryStats stats = handle.Stats();
    tuples_routed += static_cast<int64_t>(stats.tuples_routed);
    outputs += static_cast<int64_t>(stats.num_results);
    routing_secs += static_cast<double>(stats.routing_wall_ns) * 1e-9;
  }
  state.SetItemsProcessed(tuples_routed);
  // Router-path throughput (see RunSmallQuery): the acceptance metric for
  // the batched dataflow is this counter's ratio across batch sizes.
  state.counters["routed_per_sec"] =
      benchmark::Counter(static_cast<double>(tuples_routed) / routing_secs);
  state.counters["outputs_per_sec"] = benchmark::Counter(
      static_cast<double>(outputs), benchmark::Counter::kIsRate);
  state.SetLabel("items = routing steps");
}

// The larger-than-memory workload (src/spill/): an equijoin whose build
// state is 4x the global entry budget, run with spilling enabled. The
// reported counters are the CI trajectory for the spill subsystem:
// spill_ios / bytes_spilled must stay nonzero (the budget actually binds)
// and vt_ratio (spilled virtual completion / unlimited virtual completion)
// must stay within the 5x acceptance bound on this quick workload.
void RunSpillWorkload(benchmark::State& state) {
  const size_t rows = 600;  // per table; budget = 25% of total build size
  int64_t spill_ios = 0;
  int64_t bytes_spilled = 0;
  double vt_ratio = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SimTime completed[2] = {0, 0};
    uint64_t ios = 0;
    uint64_t bytes = 0;
    for (int spill = 0; spill < 2; ++spill) {
      Engine engine;
      auto schema = Schema({{"k", ValueType::kInt64}});
      std::vector<ColumnGenSpec> cols{
          {"k", ColumnGenSpec::Kind::kUniform, 0, 299, 0, 0}};
      engine.AddTable(
          TableDef{"R", schema, {{"R.scan", AccessMethodKind::kScan, {}}}},
          GenerateRows(cols, rows, 71)).IgnoreError();
      engine.AddTable(
          TableDef{"S", schema, {{"S.scan", AccessMethodKind::kScan, {}}}},
          GenerateRows(cols, rows, 72)).IgnoreError();
      QueryBuilder qb(engine.catalog());
      qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.k");
      QuerySpec query = qb.Build().ValueOrDie();
      RunOptions options =
          spill ? RunOptions::LargerThanMemory(rows / 2) : RunOptions();
      options.exec.scan_defaults.period = Micros(10);
      QueryHandle handle = engine.Submit(query, options).ValueOrDie();
      state.ResumeTiming();
      handle.Wait();
      state.PauseTiming();
      const QueryStats stats = handle.Stats();
      completed[spill] = stats.completed_at;
      if (spill) {
        ios = stats.spill_ios;
        bytes = stats.bytes_spilled;
      }
    }
    state.ResumeTiming();
    spill_ios += static_cast<int64_t>(ios);
    bytes_spilled += static_cast<int64_t>(bytes);
    vt_ratio += static_cast<double>(completed[1]) /
                static_cast<double>(completed[0]);
    ++iterations;
  }
  state.counters["spill_ios"] =
      benchmark::Counter(static_cast<double>(spill_ios) / iterations);
  state.counters["bytes_spilled"] =
      benchmark::Counter(static_cast<double>(bytes_spilled) / iterations);
  state.counters["vt_ratio"] = benchmark::Counter(vt_ratio / iterations);
  state.SetLabel("unlimited vs LargerThanMemory(25%)");
}

// Cross-query SteM sharing (RunOptions::share_stems): N identical queries
// submitted concurrently, shared vs private build state. The CI trajectory
// counter is shared_build_reduction — total physical SteM inserts (rows +
// index postings actually written) of the private run over the shared run;
// with fan-out N it should approach N (the first query builds, the rest
// attach). builds_avoided is the shared run's skipped physical builds.
void RunSharedFanoutWorkload(size_t fanout, benchmark::State& state) {
  const size_t rows = 512;
  int64_t private_inserts = 0;
  int64_t shared_inserts = 0;
  int64_t builds_avoided = 0;
  int64_t iterations = 0;
  for (auto _ : state) {
    uint64_t inserts[2] = {0, 0};
    uint64_t avoided = 0;
    for (int shared = 0; shared < 2; ++shared) {
      state.PauseTiming();
      Engine engine;
      const std::vector<ColumnGenSpec> cols{
          {"k", ColumnGenSpec::Kind::kUniform, 0, 127, 0, 1.0},
          {"v", ColumnGenSpec::Kind::kSequential, 0, 0, 1, 1.0}};
      engine.AddTable(TableDef{"R", SchemaFor(cols),
                               {{"R.scan", AccessMethodKind::kScan, {}}}},
                      GenerateRows(cols, rows, 81)).IgnoreError();
      engine.AddTable(TableDef{"S", SchemaFor(cols),
                               {{"S.scan", AccessMethodKind::kScan, {}}}},
                      GenerateRows(cols, rows, 82)).IgnoreError();
      QueryBuilder qb(engine.catalog());
      qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.k");
      QuerySpec query = qb.Build().ValueOrDie();
      RunOptions options;
      options.share_stems = shared != 0;
      options.exec.scan_defaults.period = Micros(1);
      std::vector<QueryHandle> handles;
      for (size_t i = 0; i < fanout; ++i) {
        handles.push_back(engine.Submit(query, options).ValueOrDie());
      }
      state.ResumeTiming();
      engine.RunAll();
      state.PauseTiming();
      for (QueryHandle& h : handles) {
        for (const auto& module : h.eddy()->modules()) {
          if (module->kind() != ModuleKind::kStem) continue;
          const auto* stem = static_cast<const Stem*>(module.get());
          inserts[shared] += stem->builds() - stem->builds_avoided();
        }
        avoided += h.Stats().builds_avoided;
      }
      state.ResumeTiming();
    }
    private_inserts += static_cast<int64_t>(inserts[0]);
    shared_inserts += static_cast<int64_t>(inserts[1]);
    builds_avoided += static_cast<int64_t>(avoided);
    ++iterations;
  }
  state.counters["shared_build_reduction"] = benchmark::Counter(
      static_cast<double>(private_inserts) /
      static_cast<double>(shared_inserts > 0 ? shared_inserts : 1));
  state.counters["builds_avoided"] =
      benchmark::Counter(static_cast<double>(builds_avoided) / iterations);
  state.SetLabel("private vs share_stems, identical concurrent queries");
}

namespace {

void BM_SpillLargerThanMemory(benchmark::State& state) {
  RunSpillWorkload(state);
}
BENCHMARK(BM_SpillLargerThanMemory);

void BM_SharedStemFanout(benchmark::State& state) {
  RunSharedFanoutWorkload(static_cast<size_t>(state.range(0)), state);
}
BENCHMARK(BM_SharedStemFanout)->ArgName("fanout")->Arg(2)->Arg(4);

void BM_EddyEndToEnd_CheckerOff(benchmark::State& state) {
  RunSmallQuery(ConstraintMode::kOff, "nary_shj", 1, state);
}
void BM_EddyEndToEnd_CheckerRecord(benchmark::State& state) {
  RunSmallQuery(ConstraintMode::kRecord, "nary_shj", 1, state);
}
BENCHMARK(BM_EddyEndToEnd_CheckerOff);
BENCHMARK(BM_EddyEndToEnd_CheckerRecord);

void BM_ReorderWorkload(benchmark::State& state) {
  RunReorderWorkload(static_cast<size_t>(state.range(0)), state);
}
void BM_ReorderWorkloadBare(benchmark::State& state) {
  RunReorderWorkload(static_cast<size_t>(state.range(0)), state,
                     ObsMode::kBare);
}
void BM_ReorderWorkloadTraced(benchmark::State& state) {
  RunReorderWorkload(static_cast<size_t>(state.range(0)), state,
                     ObsMode::kTraced);
}
BENCHMARK(BM_ReorderWorkload)
    ->ArgName("batch")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64);
// The observability-overhead pair (batch 64 only — the hot routing
// configuration): Bare is the pre-observability baseline, Traced samples
// every 64th event. CI compares both against the default run above.
BENCHMARK(BM_ReorderWorkloadBare)->ArgName("batch")->Arg(64);
BENCHMARK(BM_ReorderWorkloadTraced)->ArgName("batch")->Arg(64);

// --- Row hashing / dedup ------------------------------------------------------

void BM_RowHash(benchmark::State& state) {
  Rng rng(3);
  std::vector<RowRef> rows;
  for (int i = 0; i < 1024; ++i) {
    rows.push_back(MakeRow({Value::Int64(rng.NextInt(0, 1 << 20)),
                            Value::Int64(rng.NextInt(0, 1 << 20)),
                            Value::String("payload")}));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rows[i++ % rows.size()]->Hash());
  }
}
BENCHMARK(BM_RowHash);

}  // namespace
}  // namespace stems

// Custom main instead of BENCHMARK_MAIN(): the end-to-end benchmark sweeps
// every policy in the registry by enumeration, so new policies appear here
// with zero bench edits. Registration happens in main, after every
// STEMS_REGISTER_POLICY static initializer has run.
int main(int argc, char** argv) {
  stems::bench::ForEachRegisteredPolicy([](const std::string& policy) {
    benchmark::RegisterBenchmark(
        ("BM_EddyEndToEnd_Policy/" + policy).c_str(),
        [policy](benchmark::State& state) {
          stems::RunSmallQuery(stems::ConstraintMode::kOff, policy,
                               static_cast<size_t>(state.range(0)), state);
        })
        ->ArgName("batch")
        ->Arg(1)
        ->Arg(8)
        ->Arg(64);
  });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
