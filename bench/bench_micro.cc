// Micro-benchmarks (google-benchmark): SteM data-structure throughput, EOT
// coverage checks, eddy routing overhead, the cost of the constraint
// checker (an ablation over ConstraintMode), and an end-to-end sweep over
// every policy in the registry.
#include <benchmark/benchmark.h>

#include <memory>

#include "bench/bench_util.h"
#include "engine/engine.h"
#include "stem/eot_store.h"
#include "stem/stem_index.h"
#include "storage/generators.h"

namespace stems {
namespace {

// --- SteM index implementations --------------------------------------------

void BM_StemIndexInsert(benchmark::State& state) {
  const auto impl = static_cast<StemIndexImpl>(state.range(0));
  const size_t n = 4096;
  Rng rng(1);
  std::vector<Value> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back(Value::Int64(rng.NextInt(0, 1 << 20)));
  for (auto _ : state) {
    auto index = MakeStemIndex(impl, 64);
    for (size_t i = 0; i < n; ++i) {
      index->Insert(keys[i], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_StemIndexInsert)
    ->Arg(static_cast<int>(StemIndexImpl::kHash))
    ->Arg(static_cast<int>(StemIndexImpl::kOrdered))
    ->Arg(static_cast<int>(StemIndexImpl::kAdaptive));

void BM_StemIndexLookup(benchmark::State& state) {
  const auto impl = static_cast<StemIndexImpl>(state.range(0));
  const size_t n = 4096;
  Rng rng(2);
  auto index = MakeStemIndex(impl, 64);
  std::vector<Value> keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Value::Int64(rng.NextInt(0, 1 << 16)));
    index->Insert(keys.back(), static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    index->LookupEq(keys[i++ % n], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StemIndexLookup)
    ->Arg(static_cast<int>(StemIndexImpl::kHash))
    ->Arg(static_cast<int>(StemIndexImpl::kOrdered))
    ->Arg(static_cast<int>(StemIndexImpl::kAdaptive));

// --- EOT coverage ------------------------------------------------------------

void BM_EotCoverage(benchmark::State& state) {
  const int64_t num_eots = state.range(0);
  EotStore store;
  for (int64_t i = 0; i < num_eots; ++i) {
    store.Add(MakeEotRowRef({Value::Int64(i), Value::Eot(), Value::Eot()}));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Covers({{0, Value::Int64(probe++ % (num_eots + 7))}}));
  }
}
BENCHMARK(BM_EotCoverage)->Arg(16)->Arg(256)->Arg(2048);

// --- End-to-end eddy: routing overhead & constraint checker ablation --------

}  // namespace

// External linkage: the policy-sweep registration in main() below names it.
void RunSmallQuery(ConstraintMode mode, const std::string& policy,
                   benchmark::State& state) {
  int64_t tuples_routed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Engine engine;
    auto schema = Schema({{"k", ValueType::kInt64}});
    std::vector<ColumnGenSpec> cols{
        {"k", ColumnGenSpec::Kind::kUniform, 0, 255, 0, 0}};
    engine.AddTable(
        TableDef{"R", schema, {{"R.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 512, 51));
    engine.AddTable(
        TableDef{"S", schema, {{"S.scan", AccessMethodKind::kScan, {}}}},
        GenerateRows(cols, 512, 52));
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.k");
    QuerySpec query = qb.Build().ValueOrDie();
    RunOptions options;
    options.policy = policy;
    options.exec.scan_defaults.period = Micros(1);
    options.exec.eddy.constraint_mode = mode;
    QueryHandle handle = engine.Submit(query, options).ValueOrDie();
    state.ResumeTiming();
    handle.Wait();
    tuples_routed += static_cast<int64_t>(handle.Stats().tuples_routed);
  }
  state.SetItemsProcessed(tuples_routed);
  state.SetLabel("items = routing steps");
}

namespace {

void BM_EddyEndToEnd_CheckerOff(benchmark::State& state) {
  RunSmallQuery(ConstraintMode::kOff, "nary_shj", state);
}
void BM_EddyEndToEnd_CheckerRecord(benchmark::State& state) {
  RunSmallQuery(ConstraintMode::kRecord, "nary_shj", state);
}
BENCHMARK(BM_EddyEndToEnd_CheckerOff);
BENCHMARK(BM_EddyEndToEnd_CheckerRecord);

// --- Row hashing / dedup ------------------------------------------------------

void BM_RowHash(benchmark::State& state) {
  Rng rng(3);
  std::vector<RowRef> rows;
  for (int i = 0; i < 1024; ++i) {
    rows.push_back(MakeRow({Value::Int64(rng.NextInt(0, 1 << 20)),
                            Value::Int64(rng.NextInt(0, 1 << 20)),
                            Value::String("payload")}));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rows[i++ % rows.size()]->Hash());
  }
}
BENCHMARK(BM_RowHash);

}  // namespace
}  // namespace stems

// Custom main instead of BENCHMARK_MAIN(): the end-to-end benchmark sweeps
// every policy in the registry by enumeration, so new policies appear here
// with zero bench edits. Registration happens in main, after every
// STEMS_REGISTER_POLICY static initializer has run.
int main(int argc, char** argv) {
  stems::bench::ForEachRegisteredPolicy([](const std::string& policy) {
    benchmark::RegisterBenchmark(
        ("BM_EddyEndToEnd_Policy/" + policy).c_str(),
        [policy](benchmark::State& state) {
          stems::RunSmallQuery(stems::ConstraintMode::kOff, policy, state);
        });
  });
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
