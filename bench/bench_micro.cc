// Micro-benchmarks (google-benchmark): SteM data-structure throughput, EOT
// coverage checks, eddy routing overhead, and the cost of the constraint
// checker (an ablation over ConstraintMode).
#include <benchmark/benchmark.h>

#include <memory>

#include "eddy/policies/nary_shj_policy.h"
#include "query/planner.h"
#include "stem/eot_store.h"
#include "stem/stem_index.h"
#include "storage/generators.h"

namespace stems {
namespace {

// --- SteM index implementations --------------------------------------------

void BM_StemIndexInsert(benchmark::State& state) {
  const auto impl = static_cast<StemIndexImpl>(state.range(0));
  const size_t n = 4096;
  Rng rng(1);
  std::vector<Value> keys;
  for (size_t i = 0; i < n; ++i) keys.push_back(Value::Int64(rng.NextInt(0, 1 << 20)));
  for (auto _ : state) {
    auto index = MakeStemIndex(impl, 64);
    for (size_t i = 0; i < n; ++i) {
      index->Insert(keys[i], static_cast<uint32_t>(i));
    }
    benchmark::DoNotOptimize(index);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations() * n));
}
BENCHMARK(BM_StemIndexInsert)
    ->Arg(static_cast<int>(StemIndexImpl::kHash))
    ->Arg(static_cast<int>(StemIndexImpl::kOrdered))
    ->Arg(static_cast<int>(StemIndexImpl::kAdaptive));

void BM_StemIndexLookup(benchmark::State& state) {
  const auto impl = static_cast<StemIndexImpl>(state.range(0));
  const size_t n = 4096;
  Rng rng(2);
  auto index = MakeStemIndex(impl, 64);
  std::vector<Value> keys;
  for (size_t i = 0; i < n; ++i) {
    keys.push_back(Value::Int64(rng.NextInt(0, 1 << 16)));
    index->Insert(keys.back(), static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    out.clear();
    index->LookupEq(keys[i++ % n], &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_StemIndexLookup)
    ->Arg(static_cast<int>(StemIndexImpl::kHash))
    ->Arg(static_cast<int>(StemIndexImpl::kOrdered))
    ->Arg(static_cast<int>(StemIndexImpl::kAdaptive));

// --- EOT coverage ------------------------------------------------------------

void BM_EotCoverage(benchmark::State& state) {
  const int64_t num_eots = state.range(0);
  EotStore store;
  for (int64_t i = 0; i < num_eots; ++i) {
    store.Add(MakeEotRowRef({Value::Int64(i), Value::Eot(), Value::Eot()}));
  }
  int64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        store.Covers({{0, Value::Int64(probe++ % (num_eots + 7))}}));
  }
}
BENCHMARK(BM_EotCoverage)->Arg(16)->Arg(256)->Arg(2048);

// --- End-to-end eddy: routing overhead & constraint checker ablation --------

void RunSmallQuery(ConstraintMode mode, benchmark::State& state) {
  int64_t tuples_routed = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Catalog catalog;
    TableStore store;
    auto schema = Schema({{"k", ValueType::kInt64}});
    catalog.AddTable(
        TableDef{"R", schema, {{"R.scan", AccessMethodKind::kScan, {}}}});
    catalog.AddTable(
        TableDef{"S", schema, {{"S.scan", AccessMethodKind::kScan, {}}}});
    std::vector<ColumnGenSpec> cols{
        {"k", ColumnGenSpec::Kind::kUniform, 0, 255, 0, 0}};
    store.AddTable("R", schema, GenerateRows(cols, 512, 51));
    store.AddTable("S", schema, GenerateRows(cols, 512, 52));
    QueryBuilder qb(catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.k");
    QuerySpec query = qb.Build().ValueOrDie();
    Simulation sim;
    ExecutionConfig config;
    config.scan_defaults.period = Micros(1);
    config.eddy.constraint_mode = mode;
    auto eddy = PlanQuery(query, store, &sim, config).ValueOrDie();
    eddy->SetPolicy(std::make_unique<NaryShjPolicy>());
    state.ResumeTiming();
    eddy->RunToCompletion();
    tuples_routed += static_cast<int64_t>(eddy->tuples_routed());
  }
  state.SetItemsProcessed(tuples_routed);
  state.SetLabel("items = routing steps");
}

void BM_EddyEndToEnd_CheckerOff(benchmark::State& state) {
  RunSmallQuery(ConstraintMode::kOff, state);
}
void BM_EddyEndToEnd_CheckerRecord(benchmark::State& state) {
  RunSmallQuery(ConstraintMode::kRecord, state);
}
BENCHMARK(BM_EddyEndToEnd_CheckerOff);
BENCHMARK(BM_EddyEndToEnd_CheckerRecord);

// --- Row hashing / dedup ------------------------------------------------------

void BM_RowHash(benchmark::State& state) {
  Rng rng(3);
  std::vector<RowRef> rows;
  for (int i = 0; i < 1024; ++i) {
    rows.push_back(MakeRow({Value::Int64(rng.NextInt(0, 1 << 20)),
                            Value::Int64(rng.NextInt(0, 1 << 20)),
                            Value::String("payload")}));
  }
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rows[i++ % rows.size()]->Hash());
  }
}
BENCHMARK(BM_RowHash);

}  // namespace
}  // namespace stems

BENCHMARK_MAIN();
