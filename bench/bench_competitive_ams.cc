// §4 point 2: "SteMs allow the eddy to efficiently learn between
// competitive access methods, while doing almost no redundant work."
//
// The inner table S is served by two mirror index sources: a fast one and a
// slow one that additionally stalls mid-query (an autonomously maintained
// web source, §1.2). We compare:
//   * static-first  — always probes the slow AM (a wrong a-priori choice);
//   * static-best   — always probes the fast AM (oracle);
//   * lottery       — adaptive ticket-based AM choice;
//   * benefit-cost  — adaptive ETA-based AM choice.
// Redundant work is measured as coalesced probes + SteM duplicate builds
// (both AMs feed one shared SteM, so even explored probes are never wasted,
// §3.3).
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRRows = 600;
constexpr size_t kDistinct = 200;
constexpr SimTime kScanPeriod = Millis(20);
constexpr SimTime kFastLatency = Millis(150);
constexpr SimTime kSlowLatency = Millis(1200);

struct Outcome {
  CounterSeries results;
  int64_t fast_probes = 0;
  int64_t slow_probes = 0;
  uint64_t stem_dups = 0;
  size_t violations = 0;
};

enum class Variant { kStaticSlowFirst, kStaticFastFirst, kLottery, kBenefit };

Outcome Run(Variant variant) {
  Catalog catalog;
  TableStore store;
  TableDef r{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}};
  // AM order matters for the static policy: the slow mirror is listed first
  // (the pessimal a-priori pick) unless the variant flips it.
  TableDef s{"S", SchemaS(), {}};
  if (variant == Variant::kStaticFastFirst) {
    s.access_methods = {{"S.fast", AccessMethodKind::kIndex, {0}},
                        {"S.slow", AccessMethodKind::kIndex, {0}}};
  } else {
    s.access_methods = {{"S.slow", AccessMethodKind::kIndex, {0}},
                        {"S.fast", AccessMethodKind::kIndex, {0}}};
  }
  catalog.AddTable(r).IgnoreError();
  catalog.AddTable(s).IgnoreError();
  store.AddTable("R", SchemaR(), GenerateTableR(kRRows, kDistinct, 3))
      .IgnoreError();
  store.AddTable("S", SchemaS(), GenerateTableS(kDistinct)).IgnoreError();

  QueryBuilder qb(catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec query = qb.Build().ValueOrDie();

  Simulation sim;
  ExecutionConfig config;
  config.scan_defaults.period = kScanPeriod;
  config.index_overrides["S.fast"].latency =
      std::make_shared<FixedLatency>(kFastLatency);
  config.index_overrides["S.slow"].latency =
      std::make_shared<StallWindowLatency>(
          std::make_unique<FixedLatency>(kSlowLatency),
          std::vector<StallWindowLatency::Window>{
              {Seconds(4), Seconds(30)}});
  auto eddy = PlanQuery(query, store, &sim, config).ValueOrDie();
  switch (variant) {
    case Variant::kStaticSlowFirst:
    case Variant::kStaticFastFirst:
      eddy->SetPolicy(PolicyRegistry::Global().Create("nary_shj").ValueOrDie());
      break;
    case Variant::kLottery:
      eddy->SetPolicy(PolicyRegistry::Global().Create("lottery").ValueOrDie());
      break;
    case Variant::kBenefit:
      eddy->SetPolicy(PolicyRegistry::Global().Create("benefit_cost").ValueOrDie());
      break;
  }
  eddy->RunToCompletion();

  Outcome out;
  out.results = eddy->ctx()->metrics.Series("results");
  out.fast_probes = eddy->ctx()->metrics.Series("S.fast.probes").total();
  out.slow_probes = eddy->ctx()->metrics.Series("S.slow.probes").total();
  out.stem_dups = eddy->StemForTable("S")->duplicates_absorbed();
  out.violations = eddy->violations().size();
  return out;
}

}  // namespace
}  // namespace stems

int main() {
  using namespace stems;
  using namespace stems::bench;

  PrintHeader("bench_competitive_ams — two mirror index AMs, one slow+stalling",
              "§4 salient point 2 (competitive access methods)",
              "adaptive policies approach the oracle's completion time and "
              "send almost all probes to the healthy mirror; redundant "
              "remote work stays near zero");

  Outcome slow_first = Run(Variant::kStaticSlowFirst);
  Outcome fast_first = Run(Variant::kStaticFastFirst);
  Outcome lottery = Run(Variant::kLottery);
  Outcome benefit = Run(Variant::kBenefit);

  PrintSeriesTable(
      "results over time", Seconds(60), Seconds(4),
      {{"static_slow", &slow_first.results},
       {"oracle_fast", &fast_first.results},
       {"lottery", &lottery.results},
       {"benefit_cost", &benefit.results}});

  std::printf("\n## Summary\n\n");
  auto report = [](const char* name, const Outcome& o) {
    std::printf("%-14s completion %8.2f s   probes fast/slow %4lld/%4lld   "
                "stem dups %4llu   violations %zu\n",
                name, CompletionSeconds(o.results, o.results.total()),
                static_cast<long long>(o.fast_probes),
                static_cast<long long>(o.slow_probes),
                static_cast<unsigned long long>(o.stem_dups), o.violations);
  };
  report("static_slow", slow_first);
  report("oracle_fast", fast_first);
  report("lottery", lottery);
  report("benefit_cost", benefit);
  return 0;
}
