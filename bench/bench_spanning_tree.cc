// §4 point 3 / §3.4: "SteMs allow the eddy to dynamically choose the join
// spanning tree for cyclic queries."
//
// Fully cyclic triangle query over R, S, T with join predicates on all
// three pairs. T's source stalls for a long window mid-query.
//
//   * static plan — spanning tree fixed a priori to R–T, T–S (T in the
//     middle): while T stalls, *nothing* flows, and R–S pairs are never
//     materialized at all (the R–S edge is off-tree);
//   * eddy + SteMs — no spanning tree is fixed: R–S partial results keep
//     streaming during the stall (valuable under the online metric), and
//     full results continue for T tuples that arrived before the stall.
#include <cstdio>
#include <memory>

#include "baseline/shj_op.h"
#include "bench/bench_util.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRows = 300;
constexpr int64_t kDomain = 60;
constexpr SimTime kPeriod = Millis(66);  // R, S stream until ~20 s
// T delivers nothing until t=25 s (source down from the start, §3.4).
const StallWindowLatency::Window kStall{Seconds(0), Seconds(25)};

struct Setup {
  Catalog catalog;
  TableStore store;
  QuerySpec query;
};

void Build(Setup* s) {
  // R(key,a,c), S(key,x,y), T(key,b,d): unique keys (set semantics trivially
  // equal to bag semantics, so the static baseline is comparable), cyclic
  // predicates R.a=S.x, S.y=T.b, T.d=R.c.
  auto schema_r = Schema({{"key", ValueType::kInt64},
                          {"a", ValueType::kInt64},
                          {"c", ValueType::kInt64}});
  auto schema_s = Schema({{"key", ValueType::kInt64},
                          {"x", ValueType::kInt64},
                          {"y", ValueType::kInt64}});
  auto schema_t = Schema({{"key", ValueType::kInt64},
                          {"b", ValueType::kInt64},
                          {"d", ValueType::kInt64}});
  s->catalog.AddTable(
      TableDef{"R", schema_r, {{"R.scan", AccessMethodKind::kScan, {}}}})
      .IgnoreError();
  s->catalog.AddTable(
      TableDef{"S", schema_s, {{"S.scan", AccessMethodKind::kScan, {}}}})
      .IgnoreError();
  s->catalog.AddTable(
      TableDef{"T", schema_t, {{"T.scan", AccessMethodKind::kScan, {}}}})
      .IgnoreError();
  std::vector<ColumnGenSpec> cols{
      {"key", ColumnGenSpec::Kind::kSequential, 0, 0, 0, 0},
      {"u", ColumnGenSpec::Kind::kUniform, 0, kDomain - 1, 0, 0},
      {"v", ColumnGenSpec::Kind::kUniform, 0, kDomain - 1, 0, 0}};
  s->store.AddTable("R", schema_r, GenerateRows(cols, kRows, 21)).IgnoreError();
  s->store.AddTable("S", schema_s, GenerateRows(cols, kRows, 22)).IgnoreError();
  s->store.AddTable("T", schema_t, GenerateRows(cols, kRows, 23)).IgnoreError();
  QueryBuilder qb(s->catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b").AddJoin("T.d", "R.c");
  s->query = qb.Build().ValueOrDie();
}

/// Static spanning tree R–T, T–S as a binary SHJ pipeline; the off-tree
/// predicate T.d=R.c ... R.a=S.x is applied as a residual at the top.
void RunStatic(const Setup& s, CounterSeries* results,
               CounterSeries* rt_pairs) {
  Simulation sim;
  StaticPlan plan(s.query, &sim);
  ScanAmOptions fast;
  fast.period = kPeriod;
  ScanAmOptions stalling = fast;
  stalling.stall_windows = {kStall};
  auto* r_scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "R.scan", "R", s.store.GetTable("R").ValueOrDie()->rows(),
      fast));
  auto* s_scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "S.scan", "S", s.store.GetTable("S").ValueOrDie()->rows(),
      fast));
  auto* t_scan = plan.AddModule(std::make_unique<ScanAm>(
      plan.ctx(), "T.scan", "T", s.store.GetTable("T").ValueOrDie()->rows(),
      stalling));
  // Predicate ids: 0 = R.a=S.x, 1 = S.y=T.b, 2 = T.d=R.c.
  auto* rt = plan.AddModule(std::make_unique<ShjOp>(
      plan.ctx(), "RT.shj", /*left=*/0b001, /*right=*/0b100,
      /*key_predicate_id=*/2));
  auto* rts = plan.AddModule(std::make_unique<ShjOp>(
      plan.ctx(), "RTS.shj", /*left=*/0b101, /*right=*/0b010,
      /*key_predicate_id=*/1));
  plan.Connect(r_scan, rt);
  plan.Connect(t_scan, rt);
  plan.Connect(rt, rts);
  plan.Connect(s_scan, rts);
  plan.ConnectToSink(rts);
  plan.Run();
  *results = plan.ctx()->metrics.Series("results");
  *rt_pairs = plan.ctx()->metrics.Series("span.5");  // {R,T} = 0b101
}

void RunStems(const Setup& s, CounterSeries* results,
              CounterSeries* rs_pairs, size_t* violations) {
  Simulation sim;
  ExecutionConfig config;
  config.scan_defaults.period = kPeriod;
  config.scan_overrides["T.scan"].period = kPeriod;
  config.scan_overrides["T.scan"].stall_windows = {kStall};
  auto eddy = PlanQuery(s.query, s.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(PolicyRegistry::Global().Create("lottery").ValueOrDie());
  eddy->RunToCompletion();
  *results = eddy->ctx()->metrics.Series("results");
  *rs_pairs = eddy->ctx()->metrics.Series("span.3");  // {R,S} = 0b011
  *violations = eddy->violations().size();
}

}  // namespace
}  // namespace stems

int main() {
  using namespace stems;
  using namespace stems::bench;

  PrintHeader(
      "bench_spanning_tree — cyclic triangle query, T down until t=25s",
      "§4 salient point 3 / §3.4 (dynamic spanning tree)",
      "static plan (tree R-T-S) produces nothing during the outage and "
      "R-S pairs never (off-tree); eddy+SteMs streams R-S partial results "
      "throughout the outage and catches up on full results after it");

  Setup s;
  Build(&s);

  CounterSeries static_results, static_rt, stem_results, stem_rs;
  size_t violations = 0;
  RunStatic(s, &static_results, &static_rt);
  RunStems(s, &stem_results, &stem_rs, &violations);
  if (violations != 0) {
    std::printf("WARNING: %zu constraint violations\n", violations);
  }

  PrintSeriesTable("full results over time", Seconds(56), Seconds(4),
                   {{"static_tree", &static_results},
                    {"eddy_stems", &stem_results}});
  PrintSeriesTable("partial results over time", Seconds(56), Seconds(4),
                   {{"static_RT_pairs", &static_rt},
                    {"stems_RS_pairs", &stem_rs}});

  std::printf("\n## Summary\n\n");
  PrintKeyValue("static: partial results during outage (<25s)",
                static_rt.ValueAt(Seconds(25)), "tuples");
  PrintKeyValue("stems:  partial results during outage (<25s)",
                stem_rs.ValueAt(Seconds(25)), "tuples");
  PrintKeyValue("static: total results", static_results.total(), "tuples");
  PrintKeyValue("stems:  total results", stem_results.total(), "tuples");
  PrintKeyValue("static: completion",
                CompletionSeconds(static_results, static_results.total()),
                "s");
  PrintKeyValue("stems:  completion",
                CompletionSeconds(stem_results, stem_results.total()), "s");
  PrintKeyValue("stems:  R-S pairs produced", stem_rs.total(), "pairs");
  PrintKeyValue("static: R-S pairs produced", static_cast<int64_t>(0),
                "pairs (off-tree)");
  return 0;
}
