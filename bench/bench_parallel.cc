// bench_parallel: morsel-executor scaling curve (docs/parallelism.md).
//
// Runs one multi-join workload through the wall-clock ThreadPoolExecutor
// at 1/2/4/8 worker threads (best-of-N wall time per point) and reports
// routed tuples/sec plus the speedup ratios the CI bench-smoke job gates
// on: threads_speedup_2x >= 1.0 and threads_speedup_4x >= 2.0 on the
// 4-vCPU runner.
//
//   ./build/bench/bench_parallel [--quick] [--json BENCH_parallel.json]
//
// JSON is google-benchmark shaped ({"benchmarks": [...]}) so the CI job
// merges it into BENCH_results.json next to the other suites. The
// "/summary" entry carries the speedup ratios; per-thread entries carry
// the raw rates. Every thread count must produce the same result
// cardinality — the bench aborts otherwise, so a perf run can never quote
// numbers from a wrong answer.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "exec/threaded_executor.h"

using namespace stems;

namespace {

bool g_quick = false;
// --quick still needs runs long enough (tens of ms) for the speedup
// ratios to be stable on a shared CI runner; it trims repeats, not scale.
size_t Repeats() { return g_quick ? 3 : 5; }
size_t ScaleRows() { return g_quick ? 6000 : 9000; }

constexpr size_t kThreadCounts[] = {1, 2, 4, 8};

void Die(const Status& st) {
  if (!st.ok()) {
    std::fprintf(stderr, "bench_parallel: %s\n", st.ToString().c_str());
    std::exit(1);
  }
}

/// Three-table chain join over synthetic uniform keys. The domain grows
/// with the row count so the match fan-out (and thus the result set) stays
/// bounded while the probe volume scales linearly.
void Fill(Engine* engine) {
  const size_t n = ScaleRows();
  const int64_t domain = static_cast<int64_t>(n / 6);
  std::vector<RowRef> r, s, t;
  uint64_t x = 0x2545F4914F6CDD1DULL;
  auto next = [&x](int64_t mod) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    return static_cast<int64_t>(x % static_cast<uint64_t>(mod));
  };
  for (size_t i = 0; i < n; ++i) {
    r.push_back(MakeRow({Value::Int64(next(domain)),
                         Value::Int64(static_cast<int64_t>(i))}));
    s.push_back(MakeRow(
        {Value::Int64(next(domain)), Value::Int64(next(domain))}));
  }
  for (size_t i = 0; i < n / 2; ++i) {
    t.push_back(MakeRow({Value::Int64(next(domain))}));
  }
  Schema r_schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}});
  Schema s_schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}});
  Schema t_schema({{"u", ValueType::kInt64}});
  Die(engine->AddTable(
      TableDef{"R", r_schema, {{"R.scan", AccessMethodKind::kScan, {}}}},
      std::move(r)));
  Die(engine->AddTable(
      TableDef{"S", s_schema, {{"S.scan", AccessMethodKind::kScan, {}}}},
      std::move(s)));
  Die(engine->AddTable(
      TableDef{"T", t_schema, {{"T.scan", AccessMethodKind::kScan, {}}}},
      std::move(t)));
}

struct Point {
  size_t threads = 0;
  double best_wall_s = 0;
  uint64_t routed = 0;
  size_t num_results = 0;
  double routed_per_sec = 0;
};

Point Measure(const QuerySpec& query, const TableStore& store,
              size_t threads) {
  ThreadPoolExecutor executor;
  RunOptions options;
  options.policy = "nary_shj";
  options.batch_size = 64;
  options.executor = ExecutorKind::kThreaded;
  options.num_threads = threads;
  Point point;
  point.threads = threads;
  point.best_wall_s = 1e30;
  for (size_t rep = 0; rep < Repeats(); ++rep) {
    ExecOutcome outcome;
    const auto t0 = std::chrono::steady_clock::now();
    Die(executor.Execute(query, options, store, &outcome));
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - t0)
                            .count();
    point.best_wall_s = std::min(point.best_wall_s, wall);
    point.routed = outcome.totals.tuples_routed;
    point.num_results = outcome.results.size();
    if (!outcome.violations.empty()) {
      std::fprintf(stderr, "bench_parallel: %zu audit violations\n",
                   outcome.violations.size());
      std::exit(1);
    }
  }
  point.routed_per_sec =
      static_cast<double>(point.routed) / point.best_wall_s;
  return point;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      g_quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--quick] [--json <path>]\n", argv[0]);
      return 2;
    }
  }

  Engine engine;
  Fill(&engine);
  QueryBuilder qb(engine.catalog());
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.u");
  auto built = std::move(qb).Build();
  Die(built.status());
  const QuerySpec query = std::move(built).Value();

  std::printf("bench_parallel: %zu+%zu+%zu rows, best of %zu runs\n",
              ScaleRows(), ScaleRows(), ScaleRows() / 2, Repeats());

  std::vector<Point> points;
  for (size_t threads : kThreadCounts) {
    points.push_back(Measure(query, engine.store(), threads));
    const Point& p = points.back();
    std::printf(
        "threads=%zu  %.3f s  %llu routed  %.0f routed/s  (%zu results)\n",
        p.threads, p.best_wall_s,
        static_cast<unsigned long long>(p.routed), p.routed_per_sec,
        p.num_results);
    if (p.num_results != points.front().num_results) {
      std::fprintf(stderr,
                   "bench_parallel: result cardinality diverged "
                   "(%zu at 1 thread vs %zu at %zu threads)\n",
                   points.front().num_results, p.num_results, p.threads);
      return 1;
    }
  }

  auto rate_at = [&points](size_t threads) {
    for (const Point& p : points) {
      if (p.threads == threads) return p.routed_per_sec;
    }
    return 0.0;
  };
  const double speedup_2x = rate_at(2) / rate_at(1);
  const double speedup_4x = rate_at(4) / rate_at(1);
  const double speedup_8x = rate_at(8) / rate_at(1);
  std::printf("speedup: 2x=%.2f  4x=%.2f  8x=%.2f\n", speedup_2x, speedup_4x,
              speedup_8x);

  std::string json = "{\n \"benchmarks\": [\n";
  char entry[512];
  for (const Point& p : points) {
    std::snprintf(entry, sizeof(entry),
                  "  {\"name\": \"BM_ParallelScaling/threads:%zu\", "
                  "\"routed_per_sec\": %.3f, \"wall_s\": %.6f, "
                  "\"tuples_routed\": %llu, \"num_results\": %zu},\n",
                  p.threads, p.routed_per_sec, p.best_wall_s,
                  static_cast<unsigned long long>(p.routed), p.num_results);
    json += entry;
  }
  std::snprintf(entry, sizeof(entry),
                "  {\"name\": \"BM_ParallelScaling/summary\", "
                "\"threads_speedup_2x\": %.4f, "
                "\"threads_speedup_4x\": %.4f, "
                "\"threads_speedup_8x\": %.4f}\n",
                speedup_2x, speedup_4x, speedup_8x);
  json += entry;
  json += " ]\n}\n";

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
      return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  }
  return 0;
}
