// §4 point 5 / §4.1: "With SteMs, the eddy can adaptively choose the way it
// reorders tuples in interactive environments."
//
// The user prioritizes a subset of R (a predicate over R.a). T has a slow
// scan plus an async index. With ProbeBounceMode::kPrioritized on SteM(T),
// prioritized probes that miss the cache are bounced back and expedited
// through the index AM; everyone else waits for the scan. We compare the
// delivery time of prioritized results with and without priority bounce.
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench/bench_util.h"
#include "storage/generators.h"

namespace stems {
namespace {

constexpr size_t kRows = 500;
constexpr SimTime kRScanPeriod = Millis(10);
constexpr SimTime kTScanPeriod = Millis(120);  // T complete only at 60 s
constexpr SimTime kIndexLatency = Millis(200);
constexpr int64_t kPriorityCutoff = 25;  // prioritize R.a < 25 (~10% of rows)

/// --quick (CI bench-smoke): same workload shape at 1/5 the size, so the
/// smoke run finishes in a blink while still exercising the full path.
/// The priority cutoff scales with the key domain so the prioritized
/// fraction (~10%) stays the same.
bool g_quick = false;
size_t Rows() { return g_quick ? kRows / 5 : kRows; }
size_t TRows() { return g_quick ? 50 : 250; }
int64_t Cutoff() { return g_quick ? kPriorityCutoff / 5 : kPriorityCutoff; }

struct Outcome {
  CounterSeries all;
  CounterSeries prioritized;
  size_t violations;
};

Outcome Run(ProbeBounceMode mode) {
  Engine engine;
  // R.a spans [0, T rows); T.key matches it.
  engine.AddTable(
      TableDef{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}},
      GenerateTableR(Rows(), TRows(), 5)).IgnoreError();
  engine.AddTable(TableDef{"T",
                           SchemaT(),
                           {{"T.scan", AccessMethodKind::kScan, {}},
                            {"T.idx", AccessMethodKind::kIndex, {0}}}},
                  GenerateTableT(TRows(), 6)).IgnoreError();
  QueryBuilder qb(engine.catalog());
  qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
  QuerySpec query = qb.Build().ValueOrDie();

  // The deliberately non-index-hungry policy (nary_shj): without a priority
  // bounce, probes simply wait for the scan.
  RunOptions options;
  options.exec.scan_overrides["R.scan"].period = kRScanPeriod;
  options.exec.scan_overrides["R.scan"].prioritizer = [](const Row& row) {
    return row.value(1).AsInt64() < Cutoff();
  };
  options.exec.scan_overrides["T.scan"].period = kTScanPeriod;
  options.exec.index_defaults.latency =
      std::make_shared<FixedLatency>(kIndexLatency);
  StemOptions t_stem;
  t_stem.bounce_mode = mode;
  options.exec.stem_overrides["T"] = t_stem;
  // Ground-truth classifier: results whose R component the user prioritized
  // (the tuple flag only survives R-side derivations).
  options.exec.eddy.result_priority_classifier = [](const Tuple& t) {
    const Value* a = t.ValueAt(0, 1);
    return a != nullptr && a->AsInt64() < Cutoff();
  };

  QueryHandle handle = bench::RunQuery(engine, query, options);

  Outcome out;
  out.all = handle.metrics().Series("results");
  out.prioritized = handle.metrics().Series("results.prioritized");
  out.violations = handle.Stats().constraint_violations;
  return out;
}

}  // namespace
}  // namespace stems

int main(int argc, char** argv) {
  using namespace stems;
  using namespace stems::bench;

  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) stems::g_quick = true;
  }

  PrintHeader(
      "bench_reorder — user prioritizes R.a < 25; T scan is slow, T index "
      "is fast",
      "§4 salient point 5 / §4.1 (adaptive reordering for interactivity)",
      "with priority bounce, prioritized results arrive far earlier (through "
      "the index) at a small cost to overall completion");

  Outcome off = Run(ProbeBounceMode::kConstraintOnly);
  Outcome on = Run(ProbeBounceMode::kPrioritized);
  if (off.violations + on.violations != 0) {
    std::printf("WARNING: %zu constraint violations\n",
                off.violations + on.violations);
  }

  PrintSeriesTable("prioritized results over time", Seconds(64), Seconds(4),
                   {{"no_priority", &off.prioritized},
                    {"priority_bounce", &on.prioritized}});
  PrintSeriesTable("all results over time", Seconds(64), Seconds(4),
                   {{"no_priority", &off.all},
                    {"priority_bounce", &on.all}});

  std::printf("\n## Summary\n\n");
  const int64_t n_prio = on.prioritized.total();
  PrintKeyValue("prioritized results (both runs)", n_prio, "tuples");
  PrintKeyValue("no_priority: all prioritized delivered at",
                CompletionSeconds(off.prioritized, off.prioritized.total()),
                "s");
  PrintKeyValue("priority_bounce: all prioritized delivered at",
                CompletionSeconds(on.prioritized, n_prio), "s");
  PrintKeyValue("no_priority: overall completion",
                CompletionSeconds(off.all, off.all.total()), "s");
  PrintKeyValue("priority_bounce: overall completion",
                CompletionSeconds(on.all, on.all.total()), "s");
  return 0;
}
